"""Size-adaptive algorithm selection for collectives.

The selector is consulted once per collective call with the payload
geometry (bytes per rank, communicator size) and returns the *name* of
the algorithm to run; the registry maps names to implementations.  The
thresholds live in :class:`~repro.mpi.algorithms.tuning.CollectiveTuning`
and are plumbed through both the raw-MPI layer
(``Communicator(tuning=...)``) and the DCGN layer
(``DcgnConfig(..., tuning=...)``).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..errors import MpiError
from .base import is_pof2 as _is_pof2
from .allgather import allgather_recursive_doubling, allgather_ring
from .allreduce import (
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
)
from .alltoall import alltoall_pairwise, alltoall_shift
from .tuning import CollectiveTuning

__all__ = ["ALGORITHMS", "AlgorithmSelector"]

#: Registry: collective → {algorithm name → implementation}.
ALGORITHMS: Dict[str, Dict[str, Callable]] = {
    "allreduce": {
        "reduce_bcast": allreduce_reduce_bcast,
        "recursive_doubling": allreduce_recursive_doubling,
        "ring": allreduce_ring,
    },
    "allgather": {
        "ring": allgather_ring,
        "recursive_doubling": allgather_recursive_doubling,
    },
    "alltoall": {
        "shift": alltoall_shift,
        "pairwise": alltoall_pairwise,
    },
}


class AlgorithmSelector:
    """Picks a collective algorithm from (message size × communicator size)."""

    def __init__(self, tuning: Optional[CollectiveTuning] = None) -> None:
        self.tuning = tuning if tuning is not None else CollectiveTuning()

    def _forced(self, coll: str, name: Optional[str]) -> Optional[str]:
        if name is None:
            return None
        if name not in ALGORITHMS[coll]:
            raise MpiError(
                f"unknown {coll} algorithm {name!r}; "
                f"choose from {sorted(ALGORITHMS[coll])}"
            )
        return name

    def allreduce(self, nbytes: int, size: int) -> str:
        forced = self._forced("allreduce", self.tuning.force_allreduce)
        if forced is not None:
            return forced
        if size <= 2:
            # Ring and doubling coincide at P=2; doubling has no chunking
            # overhead and degrades gracefully at P=1.
            return "recursive_doubling"
        if nbytes >= self.tuning.allreduce_ring_min_bytes:
            return "ring"
        return "recursive_doubling"

    def allgather(
        self, block_nbytes: int, size: int, uniform: bool = True
    ) -> str:
        forced = self._forced("allgather", self.tuning.force_allgather)
        if forced is not None:
            return forced
        enough_ranks = (
            size >= self.tuning.allgather_rd_min_ranks
            or block_nbytes <= self.tuning.allgather_rd_small_max_bytes
        )
        if (
            uniform
            and _is_pof2(size)
            and block_nbytes <= self.tuning.allgather_rd_max_bytes
            and enough_ranks
        ):
            return "recursive_doubling"
        return "ring"

    def alltoall(self, block_nbytes: int, size: int) -> str:
        """Selection is schedule-based (pof2/force) today;
        ``block_nbytes`` is reserved for a future small-message Bruck
        threshold (see ROADMAP) and currently unused."""
        forced = self._forced("alltoall", self.tuning.force_alltoall)
        if forced is not None:
            return forced
        if self.tuning.alltoall_pairwise and _is_pof2(size):
            return "pairwise"
        return "shift"
