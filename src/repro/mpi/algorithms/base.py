"""Shared plumbing for collective algorithms.

Every collective call consumes one :data:`TAG_STRIDE`-wide block of the
internal tag space (kept consistent across ranks by the requirement, as
in real MPI, that all ranks invoke collectives in the same order).
Algorithms address sub-steps with offsets inside their block; messages
between the same (source, tag) pair match FIFO, so step-loops may reuse
offsets the way the seed ring allgather always has.
"""

from __future__ import annotations

from typing import Any, Generator

from ...sim.core import Event
from ..communicator import INTERNAL_TAG_BASE, MpiContext, Request
from ..datatypes import Payload

__all__ = [
    "TAG_STRIDE",
    "is_pof2",
    "largest_pof2",
    "hier_ok",
    "next_tag",
    "isend_internal",
    "send_internal",
    "recv_internal",
]

#: Stride between the tag blocks of successive collective calls.
TAG_STRIDE = 8


def is_pof2(n: int) -> bool:
    """True when ``n`` is a power of two."""
    return n > 0 and not (n & (n - 1))


def largest_pof2(n: int) -> int:
    """The largest power of two ≤ ``n`` (``n`` ≥ 1).

    The participant count of the fold-in schedules (recursive-doubling
    allreduce, Rabenseifner reduce) — and what the autotune cost model
    must price identically.
    """
    pof2 = 1
    while pof2 * 2 <= n:
        pof2 *= 2
    return pof2


def hier_ok(ctx: MpiContext) -> bool:
    """Hierarchical variants apply when the placement spans ≥ 2
    locality domains with some intra-domain structure to exploit
    (``hier_capable`` — group sizes may differ, the sub-communicator
    composition handles unequal pods) *and* is fragmented across the
    topology's domains — a contiguous placement's flat ring/tree is
    already near-optimal (one bottleneck crossing per domain)."""
    comm = ctx.comm
    return bool(
        getattr(comm, "hier_capable", False)
        and getattr(comm, "fragmented", False)
    )


def next_tag(ctx: MpiContext) -> int:
    """Claim this rank's next collective tag block."""
    comm = ctx.comm
    seq = comm._coll_seq[ctx.rank]
    comm._coll_seq[ctx.rank] += 1
    return INTERNAL_TAG_BASE + (seq * TAG_STRIDE)


def isend_internal(
    ctx: MpiContext, buf: Payload, dest: int, tag: int
) -> Request:
    """Internal isend that bypasses the user-tag check."""
    comm = ctx.comm
    comm._check_rank(dest)

    def runner():
        yield from comm._send_impl(ctx.rank, dest, buf, tag)

    return Request(
        ctx.sim.process(runner(), name=f"coll.isend(r{ctx.rank}->r{dest})")
    )


def send_internal(
    ctx: MpiContext, buf: Payload, dest: int, tag: int
) -> Generator[Event, Any, None]:
    yield from ctx.comm._send_impl(ctx.rank, dest, buf, tag)


def recv_internal(
    ctx: MpiContext, buf: Payload, source: int, tag: int
) -> Generator[Event, Any, Any]:
    status = yield from ctx.comm._recv_impl(ctx.rank, source, buf, tag)
    return status
