"""Collective algorithm engine: implementations + size-adaptive selection.

The menu (see :data:`~repro.mpi.algorithms.selector.ALGORITHMS`):

========== ===========================================================
allreduce  ``reduce_bcast`` (seed), ``recursive_doubling``, ``ring``
allgather  ``ring`` (seed), ``recursive_doubling``
alltoall   ``shift`` (seed), ``pairwise``
========== ===========================================================

:class:`AlgorithmSelector` picks per call from message size ×
communicator size using :class:`CollectiveTuning` thresholds;
``mpi/collectives.py`` dispatches every allreduce/allgather/alltoall
through it, so both raw-MPI ranks and the DCGN comm threads benefit.
"""

from .allgather import allgather_recursive_doubling, allgather_ring
from .allreduce import (
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
)
from .alltoall import alltoall_pairwise, alltoall_shift
from .selector import ALGORITHMS, AlgorithmSelector
from .tuning import SEED_TUNING, CollectiveTuning

__all__ = [
    "ALGORITHMS",
    "AlgorithmSelector",
    "CollectiveTuning",
    "SEED_TUNING",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allreduce_recursive_doubling",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "alltoall_pairwise",
    "alltoall_shift",
]
