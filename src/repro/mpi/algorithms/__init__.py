"""Collective algorithm engine: implementations + adaptive selection.

The menu (see :data:`~repro.mpi.algorithms.selector.ALGORITHMS`):

========== ===========================================================
allreduce  ``reduce_bcast`` (seed), ``recursive_doubling``, ``ring``,
           ``hierarchical`` (intra/inter-domain phases)
allgather  ``ring`` (seed), ``recursive_doubling``, ``bruck``
           (non-power-of-two small blocks)
alltoall   ``shift`` (seed), ``pairwise``
bcast      ``binomial`` (seed), ``hierarchical`` (domain leaders)
========== ===========================================================

:class:`AlgorithmSelector` picks per call from message size ×
communicator size × placement using :class:`CollectiveTuning`
thresholds — derived per cluster from the fabric topology by
:mod:`~repro.mpi.algorithms.autotune` unless explicitly overridden;
``mpi/collectives.py`` dispatches every adaptive collective through it,
so both raw-MPI ranks and the DCGN comm threads benefit.
"""

from .allgather import (
    allgather_bruck,
    allgather_recursive_doubling,
    allgather_ring,
)
from .allreduce import (
    allreduce_recursive_doubling,
    allreduce_reduce_bcast,
    allreduce_ring,
)
from .alltoall import alltoall_pairwise, alltoall_shift
from .autotune import autotune_tuning, derive_tuning
from .bcast import bcast_binomial, bcast_hierarchical
from .hierarchical import allreduce_hierarchical
from .selector import ALGORITHMS, AlgorithmSelector
from .tuning import SEED_TUNING, CollectiveTuning

__all__ = [
    "ALGORITHMS",
    "AlgorithmSelector",
    "CollectiveTuning",
    "SEED_TUNING",
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allreduce_hierarchical",
    "allreduce_recursive_doubling",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "alltoall_pairwise",
    "alltoall_shift",
    "autotune_tuning",
    "bcast_binomial",
    "bcast_hierarchical",
    "derive_tuning",
]
