"""Collective algorithm engine: schedules, implementations, selection.

Every algorithm compiles to a round-based
:class:`~repro.mpi.algorithms.schedule.Schedule` — a per-rank DAG of
send/recv/compute steps with explicit dependencies — executed by the
communicator's :class:`~repro.mpi.algorithms.schedule.ScheduleEngine`
either blockingly (classic MPI-2 calls) or in the background (the
MPI-3 style ``i``-collectives and DCGN's comm-thread overlap).

The menu (see :data:`~repro.mpi.algorithms.selector.ALGORITHMS`):

========== ===========================================================
allreduce  ``reduce_bcast`` (seed), ``recursive_doubling``, ``ring``,
           ``hierarchical`` (intra/inter-domain phases)
allgather  ``ring`` (seed), ``recursive_doubling``, ``bruck``
           (non-power-of-two small blocks)
alltoall   ``shift`` (seed), ``pairwise``, ``bruck`` (small blocks)
bcast      ``binomial`` (seed), ``hierarchical`` (domain leaders),
           ``pipelined`` (segmented chain, large payloads)
reduce     ``binomial`` (seed), ``rabenseifner`` (reduce-scatter +
           gather, large vectors)
========== ===========================================================

:class:`AlgorithmSelector` picks per call from message size ×
communicator size × placement using :class:`CollectiveTuning`
thresholds — derived per cluster from the fabric topology by
:mod:`~repro.mpi.algorithms.autotune` (which costs the schedules round
by round) unless explicitly overridden; ``mpi/collectives.py``
dispatches every adaptive collective through it, so both raw-MPI ranks
and the DCGN comm threads benefit.
"""

from .autotune import autotune_tuning, derive_tuning
from .barrier import barrier_dissemination
from .schedule import Schedule, ScheduleEngine
from .selector import ALGORITHMS, SCHEDULES, AlgorithmSelector
from .tuning import SEED_TUNING, CollectiveTuning

# Public blocking entry points ARE the registry values — one wrapper
# object per algorithm, created in selector.py from the schedule
# builders, so patching either view patches both.
allreduce_reduce_bcast = ALGORITHMS["allreduce"]["reduce_bcast"]
allreduce_recursive_doubling = ALGORITHMS["allreduce"]["recursive_doubling"]
allreduce_ring = ALGORITHMS["allreduce"]["ring"]
allreduce_hierarchical = ALGORITHMS["allreduce"]["hierarchical"]
allgather_ring = ALGORITHMS["allgather"]["ring"]
allgather_recursive_doubling = ALGORITHMS["allgather"]["recursive_doubling"]
allgather_bruck = ALGORITHMS["allgather"]["bruck"]
alltoall_shift = ALGORITHMS["alltoall"]["shift"]
alltoall_pairwise = ALGORITHMS["alltoall"]["pairwise"]
alltoall_bruck = ALGORITHMS["alltoall"]["bruck"]
bcast_binomial = ALGORITHMS["bcast"]["binomial"]
bcast_hierarchical = ALGORITHMS["bcast"]["hierarchical"]
bcast_pipelined = ALGORITHMS["bcast"]["pipelined"]
reduce_binomial = ALGORITHMS["reduce"]["binomial"]
reduce_rabenseifner = ALGORITHMS["reduce"]["rabenseifner"]

__all__ = [
    "ALGORITHMS",
    "SCHEDULES",
    "AlgorithmSelector",
    "CollectiveTuning",
    "SEED_TUNING",
    "Schedule",
    "ScheduleEngine",
    "allgather_bruck",
    "allgather_recursive_doubling",
    "allgather_ring",
    "allreduce_hierarchical",
    "allreduce_recursive_doubling",
    "allreduce_reduce_bcast",
    "allreduce_ring",
    "alltoall_bruck",
    "alltoall_pairwise",
    "alltoall_shift",
    "autotune_tuning",
    "barrier_dissemination",
    "bcast_binomial",
    "bcast_hierarchical",
    "bcast_pipelined",
    "derive_tuning",
    "reduce_binomial",
    "reduce_rabenseifner",
]
