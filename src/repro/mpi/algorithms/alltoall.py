"""Alltoall algorithms: shift (seed) and pairwise exchange.

Both run P−1 rounds moving one block per rank per round; they differ in
partnering.  The shift schedule sends to ``rank+k`` while receiving from
``rank−k`` (two different peers per round); pairwise exchange uses the
XOR partner ``rank^k`` so each round is a perfect matching of
bidirectional pairs — the schedule real MPIs prefer on power-of-two
communicators because it keeps per-round traffic contention-free.
"""

from __future__ import annotations

from typing import Any, Generator, Sequence

from ...sim.core import Event
from ..datatypes import Payload, payload_array
from ..errors import MpiError
from .base import is_pof2, isend_internal, next_tag, recv_internal

__all__ = ["alltoall_shift", "alltoall_pairwise"]


def _local_copy(ctx, sendbufs: Sequence[Payload], recvbufs: Sequence[Payload]):
    # Buffer counts were validated by the dispatch layer.
    own = payload_array(recvbufs[ctx.rank])
    mine = payload_array(sendbufs[ctx.rank])
    if own is not None and mine is not None:
        own[...] = mine.reshape(own.shape)


def alltoall_shift(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Shift-schedule all-to-all (the seed algorithm)."""
    _local_copy(ctx, sendbufs, recvbufs)
    tag = next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        yield ctx.comm._sw()
        return
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        req = isend_internal(ctx, sendbufs[dst], dst, tag)
        yield from recv_internal(ctx, recvbufs[src], src, tag)
        yield from req.wait()


def alltoall_pairwise(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Generator[Event, Any, None]:
    """Pairwise (XOR-partner) exchange; requires power-of-two P."""
    size, rank = ctx.size, ctx.rank
    # Validate before mutating any user buffer.
    if not is_pof2(size):
        raise MpiError("pairwise alltoall needs power-of-two P")
    _local_copy(ctx, sendbufs, recvbufs)
    tag = next_tag(ctx)
    if size == 1:
        yield ctx.comm._sw()
        return
    for k in range(1, size):
        partner = rank ^ k
        req = isend_internal(ctx, sendbufs[partner], partner, tag)
        yield from recv_internal(ctx, recvbufs[partner], partner, tag)
        yield from req.wait()
