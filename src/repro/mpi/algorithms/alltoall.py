"""Alltoall algorithms: shift (seed), pairwise exchange, and Bruck.

``shift`` and ``pairwise`` run P−1 rounds moving one block per rank per
round; they differ in partnering.  The shift schedule sends to
``rank+k`` while receiving from ``rank−k`` (two different peers per
round); pairwise exchange uses the XOR partner ``rank^k`` so each round
is a perfect matching of bidirectional pairs — the schedule real MPIs
prefer on power-of-two communicators because it keeps per-round traffic
contention-free.

``bruck`` (Bruck et al. 1997) trades bandwidth for latency: after a
local rotation, round k ships *every* block whose slot index has bit k
set to ``rank+2^k`` — ⌈log2 P⌉ rounds moving ≈(P/2)·log2 P blocks total
instead of P−1 rounds of one block.  For small blocks, where per-round
latency dominates, that is the winning trade on any communicator size
(it is the only sub-linear schedule for non-powers of two); the final
inverse rotation is a local remap.  Selected by the autotuned
``alltoall_bruck_max_bytes`` threshold.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..datatypes import AdoptBuf, Payload, payload_array
from ..errors import MpiError
from .base import is_pof2, next_tag
from .schedule import Schedule

__all__ = [
    "build_alltoall_shift",
    "build_alltoall_pairwise",
    "build_alltoall_bruck",
]


def _local_copy_step(sched, ctx, sendbufs, recvbufs) -> List[int]:
    # Buffer counts were validated by the dispatch layer.
    own = payload_array(recvbufs[ctx.rank])
    mine = payload_array(sendbufs[ctx.rank])

    def local_copy():
        if own is not None and mine is not None:
            own[...] = mine.reshape(own.shape)

    return [sched.compute(local_copy)]


def build_alltoall_shift(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Shift-schedule all-to-all (the seed algorithm)."""
    sched = Schedule()
    deps = _local_copy_step(sched, ctx, sendbufs, recvbufs)
    tag = next_tag(ctx)
    size, rank = ctx.size, ctx.rank
    if size == 1:
        sched.overhead(after=deps)
        return sched
    for k in range(1, size):
        dst = (rank + k) % size
        src = (rank - k) % size
        s = sched.send(sendbufs[dst], dst, tag, after=deps, round=k - 1)
        r = sched.recv(recvbufs[src], src, tag, after=deps, round=k - 1)
        deps = [s, r]
    return sched


def build_alltoall_pairwise(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Pairwise (XOR-partner) exchange; requires power-of-two P."""
    size, rank = ctx.size, ctx.rank
    # Validate before mutating any user buffer.
    if not is_pof2(size):
        raise MpiError("pairwise alltoall needs power-of-two P")
    sched = Schedule()
    deps = _local_copy_step(sched, ctx, sendbufs, recvbufs)
    tag = next_tag(ctx)
    if size == 1:
        sched.overhead(after=deps)
        return sched
    for k in range(1, size):
        partner = rank ^ k
        s = sched.send(sendbufs[partner], partner, tag, after=deps,
                       round=k - 1)
        r = sched.recv(recvbufs[partner], partner, tag, after=deps,
                       round=k - 1)
        deps = [s, r]
    return sched


def build_alltoall_bruck(
    ctx,
    sendbufs: Sequence[Payload],
    recvbufs: Sequence[Payload],
) -> Schedule:
    """Bruck alltoall (any P, equal blocks): ⌈log2 P⌉ packed rounds.

    Slot invariant: after the initial rotation, slot ``i`` holds the
    block this rank must deliver to ``rank+i``; a block at slot ``i``
    travels +2^k in exactly the rounds where bit k of ``i`` is set, so
    every rank exchanges the same slot set each round and no index
    metadata crosses the wire.  The final remap stores slot ``i`` as
    the block received *from* ``rank−i``.
    """
    size, rank = ctx.size, ctx.rank
    mine_arrays = [payload_array(b) for b in sendbufs]
    out_arrays = [payload_array(b) for b in recvbufs]
    if any(a is None for a in mine_arrays) or any(
        a is None for a in out_arrays
    ):
        raise MpiError("bruck alltoall requires array payloads")
    block = mine_arrays[0].nbytes
    if any(a.nbytes != block for a in mine_arrays) or any(
        a.nbytes != block for a in out_arrays
    ):
        raise MpiError("bruck alltoall needs equal-size blocks")
    sched = Schedule()
    tag = next_tag(ctx)
    # Local rotation: slot i ← block destined to (rank + i) mod P.
    slots: List[np.ndarray] = [
        mine_arrays[(rank + i) % size].view(np.uint8).reshape(-1).copy()
        for i in range(size)
    ]
    if size == 1:
        own = out_arrays[0]
        sched.compute(
            lambda: own.view(np.uint8).reshape(-1).__setitem__(
                slice(None), slots[0]
            )
        )
        sched.overhead(after=(sched.last,))
        return sched
    deps: List[int] = []
    step = 1
    rnd = 0
    while step < size:
        idxs = [i for i in range(size) if i & step]
        dst = (rank + step) % size
        src = (rank - step) % size
        recvpack = AdoptBuf(len(idxs) * block)
        # donate: the payload is a fresh concatenation of the slots
        # (np.concatenate copies even for a single input), which the
        # sender never touches again.
        s = sched.send(
            lambda idxs=idxs: np.concatenate([slots[i] for i in idxs]),
            dst, tag + rnd % 2, after=deps, round=rnd, donate=True,
        )
        r = sched.recv(recvpack, src, tag + rnd % 2, after=deps, round=rnd)

        def unpack(buf=recvpack, idxs=idxs):
            arr = buf.arr
            for j, i in enumerate(idxs):
                slots[i] = arr[j * block : (j + 1) * block]

        deps = [s, sched.compute(unpack, after=(r,), round=rnd)]
        step <<= 1
        rnd += 1

    def deliver():
        # Slot i ended at this rank carrying the block from rank−i.
        for i in range(size):
            dest = out_arrays[(rank - i) % size]
            dest.view(np.uint8).reshape(-1)[...] = slots[i]

    sched.compute(deliver, after=deps)
    return sched

