"""Size/rank-count thresholds steering collective algorithm selection.

The crossover structure mirrors MPICH/MVAPICH2-style selection logic:
latency-bound (small message, many short rounds are fine as long as there
are few of them) versus bandwidth-bound (large message, total bytes on
the critical path dominate).  The class defaults below are the flat-IB
constants PR 1 calibrated; since the topology subsystem landed they are
*fallbacks only* — a :class:`~repro.mpi.communicator.Communicator`
built without an explicit tuning derives one from the cluster's actual
topology and :class:`~repro.hw.params.IbParams` via
:mod:`repro.mpi.algorithms.autotune`, so a fat tree, multi-rail fabric
or torus each get their own crossovers.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = ["CollectiveTuning"]

_KB = 1024


@dataclass(frozen=True)
class CollectiveTuning:
    """Thresholds and overrides for the collective algorithm selector.

    All sizes are in bytes of one rank's contribution.  ``force_*``
    fields pin a specific algorithm by name regardless of size (used by
    benchmarks to hold the seed baseline fixed, and available to users
    who have measured their own workload).
    """

    #: Allreduce payloads at or above this use the ring
    #: (reduce-scatter + allgather) schedule — bandwidth-optimal:
    #: 2·(P−1)/P message volumes versus recursive doubling's ⌈log2 P⌉
    #: full volumes.  Below it, recursive doubling's ⌈log2 P⌉ rounds win
    #: on latency.
    allreduce_ring_min_bytes: int = 64 * _KB

    #: Allgather blocks at or below this (per rank, equal-size,
    #: power-of-two communicators only) use recursive doubling —
    #: ⌈log2 P⌉ rounds instead of the ring's P−1, same total bytes.
    #: Above it (or whenever blocks are unequal / P is not a power of
    #: two) the bandwidth-optimal ring is kept.
    allgather_rd_max_bytes: int = 256 * _KB

    #: Recursive-doubling allgather needs enough ranks to amortize its
    #: packed rounds crossing the eager threshold: below this many ranks
    #: it only runs for blocks small enough that every packed exchange
    #: stays eager (``allgather_rd_small_max_bytes``).
    allgather_rd_min_ranks: int = 8

    #: Small-block exception to ``allgather_rd_min_ranks`` (see above).
    #: Autotune derives this as half the eager threshold — the largest
    #: block whose packed doubling rounds all stay eager — instead of
    #: the constant the flat-IB calibration baked in.
    allgather_rd_small_max_bytes: int = 8 * _KB

    #: Allgather blocks at or below this on *non-power-of-two*
    #: communicators use the Bruck algorithm (⌈log2 P⌉ rounds for any
    #: P) instead of falling back to the P−1-step ring.
    allgather_bruck_max_bytes: int = 8 * _KB

    #: Use the pairwise (XOR-partner) exchange for alltoall on
    #: power-of-two communicators; non-power-of-two always uses the
    #: shift schedule.
    alltoall_pairwise: bool = True

    #: Alltoall blocks at or below this use the Bruck packed schedule —
    #: ⌈log2 P⌉ rounds moving (P/2)·log2 P blocks instead of P−1 rounds
    #: of one block: the winning trade when per-round latency dominates,
    #: and the only sub-linear schedule on non-power-of-two
    #: communicators.  0 disables it (the flat-IB constants predate the
    #: schedule; autotune derives a real crossover per fabric).
    alltoall_bruck_max_bytes: int = 0

    #: Broadcast payloads at or above this stream through the pipelined
    #: (segmented chain) schedule instead of the binomial tree — the
    #: chain approaches one nβ instead of ⌈log2 P⌉·nβ once segments
    #: amortize their fixed costs.  ``None`` disables pipelining (the
    #: pre-engine behaviour, kept as the constants' default).
    bcast_pipeline_min_bytes: Optional[int] = None

    #: Reduce payloads at or above this use the Rabenseifner
    #: reduce-scatter + gather schedule — ≈2·nβ on the critical path
    #: versus the binomial tree's ⌈log2 P⌉·nβ.  Any communicator size:
    #: non-powers of two fold the excess ranks into the nearest
    #: power-of-two participant set first (one extra full-size round,
    #: which the autotuned crossover accounts for).  ``None`` keeps the
    #: seed binomial tree everywhere.
    reduce_raben_min_bytes: Optional[int] = None

    #: Allreduce payloads at or above this decompose hierarchically
    #: (intra-domain reduce-scatter, inter-domain ring, intra-domain
    #: allgather) when the communicator's placement is fragmented
    #: across an oversubscribed topology.  ``None`` disables the
    #: hierarchical path (always, on flat fabrics).
    allreduce_hier_min_bytes: Optional[int] = None

    #: Same gate for the hierarchical (domain-leader) broadcast.
    bcast_hier_min_bytes: Optional[int] = None

    #: Allgather blocks at or above this decompose hierarchically
    #: (gather to domain leaders → leader ring of domain blocks →
    #: intra-domain broadcast) on fragmented oversubscribed placements.
    #: ``None`` disables (always, on flat fabrics).
    allgather_hier_min_bytes: Optional[int] = None

    #: Same gate for the hierarchical alltoall (domain super-bucket
    #: exchange between leaders); uniform block sizes only.
    alltoall_hier_min_bytes: Optional[int] = None

    #: One-sided (RMA) puts/accumulates at or below this ride the eager
    #: protocol: one wire transfer with the payload inlined behind the
    #: header, landed through a bounce copy on the target host.  Above
    #: it the origin pays an rkey/rendezvous header round-trip and the
    #: payload is written **directly** into the registered window memory
    #: (zero-copy RDMA).  Autotune derives the crossover — where the
    #: target-side bounce copy starts costing more than the extra
    #: round-trip — from the fabric's α/β, so a high-latency fabric
    #: keeps eager puts longer.
    rma_eager_max_bytes: int = 8 * _KB

    #: Pin an algorithm by name (see ``ALGORITHMS`` in
    #: :mod:`repro.mpi.algorithms.selector`); ``None`` = size-adaptive.
    force_allreduce: Optional[str] = None
    force_allgather: Optional[str] = None
    force_alltoall: Optional[str] = None
    force_bcast: Optional[str] = None
    force_reduce: Optional[str] = None

    def __post_init__(self) -> None:
        for name in (
            "allreduce_ring_min_bytes",
            "allgather_rd_max_bytes",
            "allgather_rd_min_ranks",
            "allgather_rd_small_max_bytes",
            "allgather_bruck_max_bytes",
            "alltoall_bruck_max_bytes",
            "rma_eager_max_bytes",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")
        for name in (
            "allreduce_hier_min_bytes",
            "bcast_hier_min_bytes",
            "bcast_pipeline_min_bytes",
            "reduce_raben_min_bytes",
            "allgather_hier_min_bytes",
            "alltoall_hier_min_bytes",
        ):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ValueError(f"{name} must be >= 0 or None")

    def with_(self, **kwargs) -> "CollectiveTuning":
        """Functional update helper (mirrors ``HWParams.with_``)."""
        return replace(self, **kwargs)


#: Tuning that pins every collective to the pre-engine (seed) algorithm:
#: allreduce = binomial reduce + binomial bcast, allgather = ring,
#: alltoall = shift, bcast = binomial, reduce = binomial.  Benchmarks
#: use this as the fixed baseline.
SEED_TUNING = CollectiveTuning(
    force_allreduce="reduce_bcast",
    force_allgather="ring",
    force_alltoall="shift",
    force_bcast="binomial",
    force_reduce="binomial",
)

__all__.append("SEED_TUNING")
