"""MPI-layer error types."""

from __future__ import annotations

__all__ = [
    "MpiError",
    "TruncationError",
    "RankError",
    "TagError",
    "RmaError",
]


class MpiError(Exception):
    """Base class for simulated-MPI errors."""


class TruncationError(MpiError):
    """Received message larger than the posted receive buffer."""


class RankError(MpiError):
    """Rank out of range for the communicator."""


class TagError(MpiError):
    """Invalid tag (negative, or colliding with the internal tag space)."""


class RmaError(MpiError):
    """One-sided (RMA) semantics violation: an operation outside any
    access epoch, a freed window, an out-of-bounds target region, or a
    synchronization call that does not match the window's state."""
