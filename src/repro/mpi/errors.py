"""MPI-layer error types."""

from __future__ import annotations

__all__ = ["MpiError", "TruncationError", "RankError", "TagError"]


class MpiError(Exception):
    """Base class for simulated-MPI errors."""


class TruncationError(MpiError):
    """Received message larger than the posted receive buffer."""


class RankError(MpiError):
    """Rank out of range for the communicator."""


class TagError(MpiError):
    """Invalid tag (negative, or colliding with the internal tag space)."""
