"""Reduction operators and payload helpers for the simulated MPI."""

from __future__ import annotations

import enum
from typing import Optional, Union

import numpy as np

from ..hw.memory import HostBuffer

__all__ = ["ReduceOp", "AdoptBuf", "payload_array", "snapshot"]

Payload = Union[np.ndarray, HostBuffer, int, None]


class AdoptBuf:
    """A staging receive buffer the matcher may *adopt into*.

    Schedule builders use these for receives whose target is a fresh,
    builder-private staging array that downstream steps only ever
    read (recursive-doubling packs, combine temporaries, Bruck
    rotations).  When the matched message's payload array is private —
    the sender made a defensive copy, or marked the send ``donate`` —
    the receive may *rebind* :attr:`arr` to the in-flight array instead
    of memcpying it, eliding the delivery copy entirely.  Consumers
    must therefore read the array through ``.arr`` at use time, never
    capture it at build time.
    """

    __slots__ = ("arr",)

    def __init__(self, template: Union[int, np.ndarray]) -> None:
        if isinstance(template, (int, np.integer)):
            self.arr = np.empty(int(template), dtype=np.uint8)
        else:
            self.arr = np.empty_like(template)

    @property
    def nbytes(self) -> int:
        return int(self.arr.nbytes)

    def adopt(self, data: np.ndarray) -> bool:
        """Rebind to ``data`` if it is layout-compatible; False = the
        caller must fall back to a delivery copy."""
        want = self.arr
        if data.nbytes != want.nbytes or not data.flags.c_contiguous:
            return False
        if data.dtype != want.dtype or data.shape != want.shape:
            try:
                data = data.reshape(-1).view(want.dtype).reshape(want.shape)
            except (ValueError, TypeError):  # pragma: no cover - defensive
                return False
        self.arr = data
        return True


class ReduceOp(enum.Enum):
    """MPI reduction operations (the subset the apps use).

    ``REPLACE`` exists for one-sided ``accumulate`` (MPI_REPLACE): it
    turns an accumulate into an element-wise overwrite that still
    honours the per-origin ordering guarantee.  Two-sided reductions
    must not use it (which rank's contribution "wins" would be
    schedule-dependent).
    """

    SUM = "sum"
    PROD = "prod"
    MAX = "max"
    MIN = "min"
    LAND = "land"
    LOR = "lor"
    BAND = "band"
    BOR = "bor"
    REPLACE = "replace"

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``a OP b`` (never in place)."""
        if self is ReduceOp.REPLACE:
            return b.copy()
        if self is ReduceOp.SUM:
            return a + b
        if self is ReduceOp.PROD:
            return a * b
        if self is ReduceOp.MAX:
            return np.maximum(a, b)
        if self is ReduceOp.MIN:
            return np.minimum(a, b)
        if self is ReduceOp.LAND:
            return np.logical_and(a, b).astype(a.dtype)
        if self is ReduceOp.LOR:
            return np.logical_or(a, b).astype(a.dtype)
        if self is ReduceOp.BAND:
            return a & b
        if self is ReduceOp.BOR:
            return a | b
        raise NotImplementedError(self)  # pragma: no cover


def payload_array(obj: Payload) -> Optional[np.ndarray]:
    """The ndarray behind a payload, or None for timing-only payloads."""
    if obj is None or isinstance(obj, (int, np.integer)):
        return None
    if isinstance(obj, HostBuffer):
        return obj.data
    if isinstance(obj, AdoptBuf):
        return obj.arr
    if isinstance(obj, np.ndarray):
        return obj
    raise TypeError(f"unsupported payload type {type(obj)}")


def snapshot(obj: Payload, copy: bool = True) -> Optional[np.ndarray]:
    """Copy payload contents at send time (MPI buffered semantics).

    ``copy=False`` elides the defensive copy and ships the array
    itself.  Only safe when the caller *proves* the buffer cannot be
    mutated between injection and delivery — schedule steps marked
    ``alias_ok`` (fresh builder-local staging arrays, rebound
    accumulators) qualify; user-owned buffers never do.
    """
    arr = payload_array(obj)
    if arr is None:
        return None
    return arr.copy() if copy else arr
