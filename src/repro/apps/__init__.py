"""The paper's test applications (§4) in DCGN, GAS, and single-GPU form."""

from . import cannon, mandelbrot, micro, nbody, pingpong
from .common import AppResult, efficiency, speedup

__all__ = [
    "AppResult",
    "speedup",
    "efficiency",
    "mandelbrot",
    "cannon",
    "nbody",
    "micro",
    "pingpong",
]
