"""Mandelbrot fractal generation with a dynamic work queue (paper §4).

"Calculating the Mandelbrot set is an excellent candidate for testing
dynamic and unpredictable communication. ... As GPU processors become
available they contact the master thread (target 0) and request a strip
of the output image to generate."

Three implementations share the same pixel mathematics:

* :func:`run_single_gpu` — one GPU computes the whole image (the
  baseline for speedup/efficiency);
* :func:`run_gas` — master/worker over plain MPI, CPU-mediated
  (the GAS+MPI comparison);
* :func:`run_dcgn` — the paper's version: the master is a DCGN CPU
  kernel, workers are *GPU kernels* requesting strips from inside the
  kernel via DCGN sends/recvs.

All three verify their output against :func:`mandelbrot_reference`.
Figure 5 (different runs → different strip ownership) is reproduced by
running :func:`run_dcgn` with different cluster seeds and timing jitter.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcgn import ANY, DcgnConfig, DcgnRuntime
from ..gas import GasJob
from ..gpusim import LaunchConfig
from ..hw.cluster import Cluster
from ..sim.core import Simulator
from .common import AppResult

__all__ = [
    "MandelbrotConfig",
    "mandelbrot_reference",
    "strip_iteration_counts",
    "run_single_gpu",
    "run_gas",
    "run_dcgn",
]

#: Sentinel strip id meaning "no more work".
STOP = -1


@dataclass(frozen=True)
class MandelbrotConfig:
    """Workload parameters.

    ``flops_per_iter`` calibrates the arithmetic intensity of one inner
    escape-time iteration on the device (complex multiply-add, compare,
    bookkeeping).
    """

    width: int = 1024
    height: int = 1024
    strip_height: int = 64
    max_iter: int = 512
    x0: float = -2.5
    x1: float = 1.0
    y0: float = -1.25
    y1: float = 1.25
    flops_per_iter: float = 38.0

    def __post_init__(self) -> None:
        if self.height % self.strip_height != 0:
            raise ValueError("strip_height must divide height")

    @property
    def n_strips(self) -> int:
        return self.height // self.strip_height

    @property
    def pixels(self) -> int:
        return self.width * self.height

    @property
    def strip_nbytes(self) -> int:
        """Result bytes per strip (int32 iteration counts)."""
        return self.width * self.strip_height * 4


@lru_cache(maxsize=8)
def _reference_cached(
    width, height, max_iter, x0, x1, y0, y1
) -> np.ndarray:
    """Vectorized escape-time iteration counts for the full image."""
    xs = np.linspace(x0, x1, width, dtype=np.float64)
    ys = np.linspace(y0, y1, height, dtype=np.float64)
    c = xs[None, :] + 1j * ys[:, None]
    z = np.zeros_like(c)
    counts = np.full(c.shape, max_iter, dtype=np.int32)
    alive = np.ones(c.shape, dtype=bool)
    for it in range(max_iter):
        z[alive] = z[alive] * z[alive] + c[alive]
        escaped = alive & (z.real * z.real + z.imag * z.imag > 4.0)
        counts[escaped] = it
        alive &= ~escaped
        if not alive.any():
            break
    return counts


def mandelbrot_reference(cfg: MandelbrotConfig) -> np.ndarray:
    """Iteration counts of the full image (height × width, int32)."""
    return _reference_cached(
        cfg.width, cfg.height, cfg.max_iter, cfg.x0, cfg.x1, cfg.y0, cfg.y1
    )


def strip_iteration_counts(cfg: MandelbrotConfig) -> np.ndarray:
    """Total escape-time iterations per strip (the compute-cost driver)."""
    ref = mandelbrot_reference(cfg)
    per_row = ref.sum(axis=1, dtype=np.int64)
    return per_row.reshape(cfg.n_strips, cfg.strip_height).sum(axis=1)


def _strip_seconds(cfg: MandelbrotConfig, device, strip_id: int) -> float:
    """Device time to compute one strip (full-device throughput)."""
    iters = float(strip_iteration_counts(cfg)[strip_id])
    return iters * cfg.flops_per_iter / (device.params.gflops * 1e9)


def _strip_pixels(cfg: MandelbrotConfig, strip_id: int) -> np.ndarray:
    ref = mandelbrot_reference(cfg)
    r0 = strip_id * cfg.strip_height
    return ref[r0 : r0 + cfg.strip_height, :]


def _verify(cfg: MandelbrotConfig, image: np.ndarray) -> None:
    if not np.array_equal(image, mandelbrot_reference(cfg)):
        raise AssertionError("mandelbrot output does not match reference")


# ---------------------------------------------------------------------------
# Single-GPU baseline
# ---------------------------------------------------------------------------

def run_single_gpu(
    cluster: Cluster, cfg: MandelbrotConfig
) -> AppResult:
    """One GPU computes the whole image in one kernel (no messaging)."""
    sim = cluster.sim
    device = cluster.nodes[0].gpus[0]
    image = np.zeros((cfg.height, cfg.width), dtype=np.int32)
    marks = {}

    def kernel(ctx):
        total_iters = float(strip_iteration_counts(cfg).sum())
        yield from ctx.compute(
            seconds=total_iters
            * cfg.flops_per_iter
            / (device.params.gflops * 1e9)
        )

    def host():
        from ..gpusim.driver import launch, memcpy_d2h

        t0 = sim.now
        dbuf = device.alloc(
            (cfg.height, cfg.width), dtype=np.int32, name="mandel.image"
        )
        handle = yield from launch(
            device, kernel, LaunchConfig(grid_blocks=1)
        )
        yield handle.done
        dbuf.data[...] = mandelbrot_reference(cfg)
        yield from memcpy_d2h(device, image, dbuf)
        marks["elapsed"] = sim.now - t0
        dbuf.free()

    sim.process(host(), name="mandel.single")
    sim.run()
    _verify(cfg, image)
    return AppResult(
        elapsed=marks["elapsed"],
        units=1,
        model="single",
        extras={"pixels_per_s": cfg.pixels / marks["elapsed"]},
    )


# ---------------------------------------------------------------------------
# GAS + MPI master/worker
# ---------------------------------------------------------------------------

def run_gas(cluster: Cluster, cfg: MandelbrotConfig) -> AppResult:
    """Master (CPU rank 0) + one MPI worker process per GPU."""
    job = GasJob.all_gpus(cluster, with_master=True)
    n_workers = job.size - 1
    image = np.zeros((cfg.height, cfg.width), dtype=np.int32)
    owners = np.full(cfg.n_strips, -1, dtype=np.int32)
    marks = {}

    strip_words = cfg.strip_height * cfg.width

    def master(ctx):
        t0 = ctx.sim.now
        next_strip = 0
        stopped = 0
        # Combined message: [0] = finished strip id (or -1), [1:] pixels.
        combined = np.zeros(1 + strip_words, dtype=np.int32)
        while stopped < n_workers:
            status = yield from ctx.mpi.recv(combined, tag=1)
            worker = status.source
            finished = int(combined[0])
            if finished >= 0:
                r0 = finished * cfg.strip_height
                image[r0 : r0 + cfg.strip_height, :] = combined[1:].reshape(
                    cfg.strip_height, cfg.width
                )
                owners[finished] = worker
            if next_strip < cfg.n_strips:
                assignment = np.array([next_strip], dtype=np.int64)
                next_strip += 1
            else:
                assignment = np.array([STOP], dtype=np.int64)
                stopped += 1
            yield from ctx.mpi.send(assignment, dest=worker, tag=3)
        marks["elapsed"] = ctx.sim.now - t0

    def worker(ctx):
        assignment = np.zeros(1, dtype=np.int64)
        dbuf = ctx.alloc(
            (cfg.strip_height, cfg.width), dtype=np.int32, name="strip"
        )
        combined = np.zeros(1 + strip_words, dtype=np.int32)
        combined[0] = -1  # first request carries no finished strip
        while True:
            yield from ctx.mpi.send(combined, dest=0, tag=1)
            yield from ctx.mpi.recv(assignment, source=0, tag=3)
            strip_id = int(assignment[0])
            if strip_id == STOP:
                break

            def kernel(kctx, sid=strip_id):
                yield from kctx.compute(
                    seconds=_strip_seconds(cfg, kctx.device, sid)
                )

            yield from ctx.run_kernel(
                kernel, LaunchConfig(grid_blocks=1), name=f"strip{strip_id}"
            )
            dbuf.data[...] = _strip_pixels(cfg, strip_id)
            yield from ctx.pull(
                combined[1:].reshape(cfg.strip_height, cfg.width), dbuf
            )
            combined[0] = strip_id
        dbuf.free()

    job.start(master, ranks=[0])
    job.start(worker, ranks=range(1, job.size))
    job.run()
    _verify(cfg, image)
    elapsed = marks["elapsed"]
    return AppResult(
        elapsed=elapsed,
        units=n_workers,
        model="gas",
        extras={
            "pixels_per_s": cfg.pixels / elapsed,
            "owners": owners.copy(),
        },
    )


# ---------------------------------------------------------------------------
# DCGN: master CPU kernel + GPU worker kernels with in-kernel messaging
# ---------------------------------------------------------------------------

def run_dcgn(
    cluster: Cluster,
    cfg: MandelbrotConfig,
    slots_per_gpu: int = 1,
) -> AppResult:
    """The paper's dynamic work queue: GPU kernels request strips
    directly from the master via dcgn::gpu::send/recv."""
    sim = cluster.sim
    n_nodes = cluster.n_nodes
    gpus_per_node = len(cluster.nodes[0].gpus)
    # Node 0 hosts the master CPU kernel; all nodes contribute GPUs.
    node_cfgs = []
    from ..dcgn import NodeConfig

    for n in range(n_nodes):
        node_cfgs.append(
            NodeConfig(
                cpu_threads=1 if n == 0 else 0,
                gpus=gpus_per_node,
                slots_per_gpu=slots_per_gpu,
            )
        )
    rt = DcgnRuntime(cluster, DcgnConfig(node_cfgs))
    n_workers = len(rt.rankmap.gpu_ranks())
    image = np.zeros((cfg.height, cfg.width), dtype=np.int32)
    owners = np.full(cfg.n_strips, -1, dtype=np.int32)
    marks = {}

    strip_words = cfg.strip_height * cfg.width

    def master(ctx):
        t0 = ctx.sim.now
        next_strip = 0
        stopped = 0
        combined = np.zeros(1 + strip_words, dtype=np.int32)
        while stopped < n_workers:
            status = yield from ctx.recv(ANY, combined)
            worker = status.source
            finished = int(combined[0])
            if finished >= 0:
                r0 = finished * cfg.strip_height
                image[r0 : r0 + cfg.strip_height, :] = combined[1:].reshape(
                    cfg.strip_height, cfg.width
                )
                owners[finished] = worker
            if next_strip < cfg.n_strips:
                assignment = np.array([next_strip], dtype=np.int64)
                next_strip += 1
            else:
                assignment = np.array([STOP], dtype=np.int64)
                stopped += 1
            yield from ctx.send(worker, assignment)
        marks["elapsed"] = ctx.sim.now - t0

    def gpu_worker(kctx):
        comm = kctx.comm
        slot = kctx.block_idx % comm.n_slots
        device = kctx.device
        assignment = device.alloc(1, dtype=np.int64, name="assign")
        # Combined strip+request buffer in global memory: one
        # dcgn::gpu::send per cycle instead of two (the paper's workers
        # return the finished strip and request the next in one exchange).
        combined = device.alloc(1 + strip_words, dtype=np.int32, name="combined")
        combined.data[0] = -1
        while True:
            yield from comm.send(slot, 0, combined)
            yield from comm.recv(slot, 0, assignment)
            strip_id = int(assignment.data[0])
            if strip_id == STOP:
                break
            yield from kctx.compute(
                seconds=_strip_seconds(cfg, device, strip_id)
            )
            combined.data[1:] = _strip_pixels(cfg, strip_id).reshape(-1)
            combined.data[0] = strip_id
        assignment.free()
        combined.free()

    rt.launch_cpu(master, ranks=[rt.rankmap.cpu_ranks()[0]])
    rt.launch_gpu(
        gpu_worker, config=LaunchConfig(grid_blocks=slots_per_gpu)
    )
    rt.run(max_time=300.0)
    _verify(cfg, image)
    elapsed = marks["elapsed"]
    return AppResult(
        elapsed=elapsed,
        units=n_workers,
        model="dcgn",
        extras={
            "pixels_per_s": cfg.pixels / elapsed,
            "owners": owners.copy(),
        },
    )
