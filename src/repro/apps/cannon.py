"""Cannon's matrix multiplication — simultaneous communication (paper §4).

Cannon's algorithm multiplies two N×N matrices on P = q² communication
targets arranged in a q×q grid.  After an initial skew, each target
performs q steps of: local sub-matrix multiply, then rotate its A-block
left and its B-block up — a simultaneous exchange on every target,
"similar to MPI_Sendrecv_replace".

Implementations:

* :func:`run_single_gpu` — whole multiply on one GPU (efficiency base);
* :func:`run_gas` — one MPI process per GPU, push/pull around kernels;
* :func:`run_dcgn` — GPU kernels rotate blocks *from inside the kernel*
  with the fused ``sendrecv_replace`` of :class:`GpuCommApi`;
* :func:`run_mpi` — pure MPI ranks, and the **flagship consumer of
  derived communicators**: with ``subcomms=True`` every rank splits
  COMM_WORLD into its row and column communicator
  (``ctx.split(color=row, key=col)`` / ``ctx.split(color=col,
  key=row)``) and all grid communication happens on those — Cannon's
  rotation as ``sendrecv_replace`` on the row/column comm, and the Fox
  variant's per-row broadcasts as *concurrent collectives on disjoint
  sub-communicators* (``variant="fox"``).  With ``subcomms=False`` the
  same algorithms run on hand-rolled world-rank arithmetic (rotation)
  and linear point-to-point fan-out (Fox row broadcast) — the
  pre-communicator-groups baseline the benchmark compares against;
* :func:`run_dcgn_fox` — the same story at the DCGN layer: GPU kernels
  split the slot space into row groups (``ctx.comm.split``) and issue
  concurrent per-row ``broadcast``\\ s on them.

All versions compute C = A×B with real data and verify against NumPy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from ..gas import GasJob
from ..gpusim import LaunchConfig
from ..hw.cluster import Cluster
from ..mpi import MpiJob, block_placement
from ..sim.core import Simulator
from .common import AppResult

__all__ = [
    "CannonConfig",
    "run_single_gpu",
    "run_gas",
    "run_dcgn",
    "run_mpi",
    "run_dcgn_fox",
]


@dataclass(frozen=True)
class CannonConfig:
    """Workload parameters.

    ``matmul_gflops`` is the effective device throughput for the matrix
    kernel (well below peak for 2008-era hand-written SGEMM).
    """

    n: int = 1024
    grid: int = 2  #: q; P = q² targets
    dtype: str = "float32"
    matmul_gflops: float = 80.0
    seed: int = 7

    def __post_init__(self) -> None:
        if self.n % self.grid != 0:
            raise ValueError("grid must divide n")

    @property
    def p(self) -> int:
        return self.grid * self.grid

    @property
    def block_n(self) -> int:
        return self.n // self.grid

    @property
    def block_nbytes(self) -> int:
        return self.block_n * self.block_n * np.dtype(self.dtype).itemsize


def _make_inputs(cfg: CannonConfig) -> Tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(cfg.seed)
    a = rng.standard_normal((cfg.n, cfg.n)).astype(cfg.dtype)
    b = rng.standard_normal((cfg.n, cfg.n)).astype(cfg.dtype)
    return a, b


def _block(m: np.ndarray, cfg: CannonConfig, r: int, c: int) -> np.ndarray:
    bn = cfg.block_n
    return m[r * bn : (r + 1) * bn, c * bn : (c + 1) * bn]


def _block_matmul_seconds(cfg: CannonConfig) -> float:
    """Device time of one block sub-multiplication (2·bn³ flops)."""
    bn = cfg.block_n
    return 2.0 * bn * bn * bn / (cfg.matmul_gflops * 1e9)


def _verify(cfg: CannonConfig, a, b, c: np.ndarray) -> None:
    expected = (a.astype(np.float64) @ b.astype(np.float64)).astype(
        np.float64
    )
    got = c.astype(np.float64)
    err = np.max(np.abs(got - expected)) / max(1.0, np.max(np.abs(expected)))
    if err > 1e-3:
        raise AssertionError(f"cannon result off by {err:.2e}")


def _initial_skew(cfg: CannonConfig, a, b, r: int, c: int):
    """Blocks target (r,c) holds after Cannon's initial alignment."""
    q = cfg.grid
    a_blk = _block(a, cfg, r, (c + r) % q).copy()
    b_blk = _block(b, cfg, (r + c) % q, c).copy()
    return a_blk, b_blk


def run_single_gpu(cluster: Cluster, cfg: CannonConfig) -> AppResult:
    """Full N×N multiply on one GPU."""
    sim = cluster.sim
    device = cluster.nodes[0].gpus[0]
    a, b = _make_inputs(cfg)
    c = np.zeros((cfg.n, cfg.n), dtype=np.float64)
    marks = {}

    def kernel(ctx):
        flops = 2.0 * cfg.n ** 3
        yield from ctx.compute(seconds=flops / (cfg.matmul_gflops * 1e9))

    def host():
        from ..gpusim.driver import launch, memcpy_d2h, memcpy_h2d

        itemsize = np.dtype(cfg.dtype).itemsize
        da = device.alloc((cfg.n, cfg.n), dtype=cfg.dtype, name="A")
        db = device.alloc((cfg.n, cfg.n), dtype=cfg.dtype, name="B")
        dc = device.alloc((cfg.n, cfg.n), dtype=cfg.dtype, name="C")
        t0 = sim.now
        yield from memcpy_h2d(device, da, a)
        yield from memcpy_h2d(device, db, b)
        handle = yield from launch(device, kernel, LaunchConfig(grid_blocks=1))
        yield handle.done
        dc.data[...] = (a @ b).astype(cfg.dtype)
        out = np.zeros((cfg.n, cfg.n), dtype=cfg.dtype)
        yield from memcpy_d2h(device, out, dc)
        c[...] = out
        marks["elapsed"] = sim.now - t0
        for buf in (da, db, dc):
            buf.free()

    sim.process(host(), name="cannon.single")
    sim.run()
    _verify(cfg, a, b, c)
    return AppResult(elapsed=marks["elapsed"], units=1, model="single")


def run_gas(cluster: Cluster, cfg: CannonConfig) -> AppResult:
    """One MPI process per GPU; rotations via MPI_Sendrecv_replace."""
    job = GasJob.all_gpus(cluster, with_master=False)
    if job.size < cfg.p:
        raise ValueError(
            f"cluster offers {job.size} GPUs; Cannon needs {cfg.p}"
        )
    a, b = _make_inputs(cfg)
    c_blocks: Dict[int, np.ndarray] = {}
    marks = {}
    q = cfg.grid

    def worker(ctx):
        rank = ctx.rank
        if rank >= cfg.p:
            return  # spare GPUs idle
        r, col = divmod(rank, q)
        left = r * q + (col - 1) % q
        right = r * q + (col + 1) % q
        up = ((r - 1) % q) * q + col
        down = ((r + 1) % q) * q + col
        a_blk, b_blk = _initial_skew(cfg, a, b, r, col)
        c_blk = np.zeros((cfg.block_n, cfg.block_n), dtype=np.float64)
        da = ctx.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="A")
        db = ctx.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="B")
        t0 = ctx.sim.now
        yield from ctx.push(da, a_blk)
        yield from ctx.push(db, b_blk)

        def kernel(kctx):
            yield from kctx.compute(seconds=_block_matmul_seconds(cfg))

        for step in range(q):
            yield from ctx.run_kernel(
                kernel, LaunchConfig(grid_blocks=1), name=f"mm{step}"
            )
            c_blk += a_blk.astype(np.float64) @ b_blk.astype(np.float64)
            if step == q - 1:
                break
            # GPU-as-slave: pull blocks, exchange over MPI, push back.
            yield from ctx.pull(a_blk, da)
            yield from ctx.pull(b_blk, db)
            yield from ctx.mpi.sendrecv_replace(
                a_blk, dest=left, source=right, sendtag=10, recvtag=10
            )
            yield from ctx.mpi.sendrecv_replace(
                b_blk, dest=up, source=down, sendtag=11, recvtag=11
            )
            yield from ctx.push(da, a_blk)
            yield from ctx.push(db, b_blk)
        # Wait for everyone before stopping the clock (collective end).
        yield from ctx.mpi.barrier()
        if rank == 0:
            marks["elapsed"] = ctx.sim.now - t0
        c_blocks[rank] = c_blk
        da.free()
        db.free()

    job.start(worker)
    job.run()
    c = np.zeros((cfg.n, cfg.n), dtype=np.float64)
    for rank, blk in c_blocks.items():
        r, col = divmod(rank, q)
        bn = cfg.block_n
        c[r * bn : (r + 1) * bn, col * bn : (col + 1) * bn] = blk
    _verify(cfg, a, b, c)
    return AppResult(elapsed=marks["elapsed"], units=cfg.p, model="gas")


def run_dcgn(
    cluster: Cluster, cfg: CannonConfig, overlap: bool = False
) -> AppResult:
    """GPU kernels rotate blocks in-kernel via fused sendrecv_replace.

    With ``overlap=True`` the rotation is double-buffered and
    nonblocking: each step posts ``isend``/``irecv`` slot requests for
    the *next* A/B blocks into spare device buffers, then computes the
    current block product while the comm thread moves the payloads —
    the halo-style compute/communication overlap the nonblocking slot
    API exists for.  The result is identical; only the simulated
    timeline changes.
    """
    gpus_per_node = len(cluster.nodes[0].gpus)
    n_nodes = cluster.n_nodes
    if n_nodes * gpus_per_node < cfg.p:
        raise ValueError("not enough GPUs for the Cannon grid")
    # Use exactly cfg.p GPUs: fill nodes in order.
    node_cfgs = []
    remaining = cfg.p
    for n in range(n_nodes):
        g = min(gpus_per_node, remaining)
        remaining -= g
        if g > 0:
            node_cfgs.append(NodeConfig(cpu_threads=0, gpus=g, slots_per_gpu=1))
    rt = DcgnRuntime(cluster, DcgnConfig(node_cfgs))
    a, b = _make_inputs(cfg)
    c_blocks: Dict[int, np.ndarray] = {}
    marks = {}
    q = cfg.grid

    def gpu_worker(kctx):
        comm = kctx.comm
        rank = comm.rank(0)
        r, col = divmod(rank, q)
        left = r * q + (col - 1) % q
        right = r * q + (col + 1) % q
        up = ((r - 1) % q) * q + col
        down = ((r + 1) % q) * q + col
        device = kctx.device
        a_blk, b_blk = _initial_skew(cfg, a, b, r, col)
        da = device.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="A")
        db = device.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="B")
        da.data[...] = a_blk
        db.data[...] = b_blk
        if overlap:
            # Spare buffers for the in-flight next blocks.
            da2 = device.alloc(
                (cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="A2"
            )
            db2 = device.alloc(
                (cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="B2"
            )
        c_blk = np.zeros((cfg.block_n, cfg.block_n), dtype=np.float64)
        t0 = kctx.sim.now
        for step in range(q):
            if overlap and step < q - 1:
                # Post the rotation for the NEXT step, then compute the
                # current product while the payloads travel.
                sa = yield from comm.isend(0, left, da)
                ra = yield from comm.irecv(0, right, da2)
                sb = yield from comm.isend(0, up, db)
                rb = yield from comm.irecv(0, down, db2)
            yield from kctx.compute(seconds=_block_matmul_seconds(cfg))
            c_blk += da.data.astype(np.float64) @ db.data.astype(np.float64)
            if step == q - 1:
                break
            if overlap:
                for h in (sa, ra, sb, rb):
                    yield from h.wait()
                da, da2 = da2, da
                db, db2 = db2, db
            else:
                # In-kernel simultaneous rotation (no CPU mediation).
                yield from comm.sendrecv_replace(0, left, right, da)
                yield from comm.sendrecv_replace(0, up, down, db)
        yield from comm.barrier(0)
        if rank == 0:
            marks["elapsed"] = kctx.sim.now - t0
        c_blocks[rank] = c_blk
        da.free()
        db.free()
        if overlap:
            da2.free()
            db2.free()

    rt.launch_gpu(gpu_worker, config=LaunchConfig(grid_blocks=1))
    rt.run(max_time=600.0)
    c = np.zeros((cfg.n, cfg.n), dtype=np.float64)
    for rank, blk in c_blocks.items():
        r, col = divmod(rank, q)
        bn = cfg.block_n
        c[r * bn : (r + 1) * bn, col * bn : (col + 1) * bn] = blk
    _verify(cfg, a, b, c)
    return AppResult(elapsed=marks["elapsed"], units=cfg.p, model="dcgn")


def run_mpi(
    cluster: Cluster,
    cfg: CannonConfig,
    variant: str = "cannon",
    subcomms: bool = True,
    exec_backend: str = "exact",
) -> AppResult:
    """Pure-MPI Cannon (or Fox) over ``cfg.p`` ranks.

    ``variant="cannon"`` rotates A left / B up each step
    (``MPI_Sendrecv_replace``); ``variant="fox"`` broadcasts the
    diagonal-offset A block along each row and shifts B up — the
    classic broadcast-multiply-roll formulation whose row broadcasts
    run *concurrently* on the q disjoint row communicators.

    ``subcomms=True`` derives row/column communicators with
    ``ctx.split`` and expresses all grid communication in their local
    rank spaces; ``subcomms=False`` is the world-communicator baseline
    (hand-rolled rank arithmetic; Fox's row broadcast degenerates to a
    linear point-to-point fan-out because a world broadcast cannot be
    scoped to a row).  The communicator setup runs before the timed
    region, mirroring an application that splits once at startup.
    Block compute time is modeled at ``cfg.matmul_gflops``.

    ``exec_backend`` picks the timing engine (``"exact"`` |
    ``"analytic"`` | ``"pricing"``); the analytic backends fast-path
    the collectives (Fox's row broadcasts, the barriers) while the
    point-to-point rotations stay exact.  ``"pricing"`` moves no
    collective data, so verification is skipped.
    """
    if variant not in ("cannon", "fox"):
        raise ValueError(f"unknown variant {variant!r}")
    q = cfg.grid
    a, b = _make_inputs(cfg)
    job = MpiJob(
        cluster, block_placement(cfg.p, cluster.n_nodes),
        backend=exec_backend,
    )
    c_blocks: Dict[int, np.ndarray] = {}
    marks = {}

    def worker(ctx):
        rank = ctx.rank
        r, col = divmod(rank, q)
        if variant == "cannon":
            a_blk, b_blk = _initial_skew(cfg, a, b, r, col)
        else:
            a_blk = _block(a, cfg, r, col).copy()
            b_blk = _block(b, cfg, r, col).copy()
        c_blk = np.zeros((cfg.block_n, cfg.block_n), dtype=np.float64)
        a_work = np.empty_like(a_blk)
        row_ctx = col_ctx = None
        if subcomms:
            row_ctx = yield from ctx.split(color=r, key=col)
            col_ctx = yield from ctx.split(color=col, key=r)
        yield from ctx.barrier()
        t0 = ctx.sim.now
        for step in range(q):
            if variant == "fox":
                # Row broadcast of the diagonal-offset A block.
                root_col = (r + step) % q
                if col == root_col:
                    a_work[...] = a_blk
                if subcomms:
                    yield from row_ctx.bcast(a_work, root=root_col)
                elif col == root_col:
                    reqs = [
                        ctx.isend(a_work, r * q + dst, tag=20 + step)
                        for dst in range(q)
                        if dst != col
                    ]
                    for req in reqs:
                        yield from req.wait()
                else:
                    yield from ctx.recv(
                        a_work, r * q + root_col, tag=20 + step
                    )
                mult = a_work
            else:
                mult = a_blk
            yield ctx.sim.timeout(_block_matmul_seconds(cfg))
            c_blk += mult.astype(np.float64) @ b_blk.astype(np.float64)
            if step == q - 1:
                break
            if variant == "cannon":
                if subcomms:
                    yield from row_ctx.sendrecv_replace(
                        a_blk,
                        dest=(row_ctx.rank - 1) % q,
                        source=(row_ctx.rank + 1) % q,
                        sendtag=10, recvtag=10,
                    )
                else:
                    yield from ctx.sendrecv_replace(
                        a_blk,
                        dest=r * q + (col - 1) % q,
                        source=r * q + (col + 1) % q,
                        sendtag=10, recvtag=10,
                    )
            # Both variants roll B upward within the column.
            if subcomms:
                yield from col_ctx.sendrecv_replace(
                    b_blk,
                    dest=(col_ctx.rank - 1) % q,
                    source=(col_ctx.rank + 1) % q,
                    sendtag=11, recvtag=11,
                )
            else:
                yield from ctx.sendrecv_replace(
                    b_blk,
                    dest=((r - 1) % q) * q + col,
                    source=((r + 1) % q) * q + col,
                    sendtag=11, recvtag=11,
                )
        yield from ctx.barrier()
        if rank == 0:
            marks["elapsed"] = ctx.sim.now - t0
        c_blocks[rank] = c_blk

    job.start(worker)
    job.run()
    c = np.zeros((cfg.n, cfg.n), dtype=np.float64)
    for rank, blk in c_blocks.items():
        r, col = divmod(rank, q)
        bn = cfg.block_n
        c[r * bn : (r + 1) * bn, col * bn : (col + 1) * bn] = blk
    if exec_backend != "pricing":
        _verify(cfg, a, b, c)
    model = f"mpi-{variant}-" + ("rowcol" if subcomms else "world")
    return AppResult(elapsed=marks["elapsed"], units=cfg.p, model=model)


def run_dcgn_fox(
    cluster: Cluster, cfg: CannonConfig, rowcol: bool = True
) -> AppResult:
    """Fox's broadcast-multiply-roll matmul on DCGN GPU kernels.

    With ``rowcol=True`` every slot joins its row group via the
    collective ``ctx.comm.split`` and the per-step A dissemination is a
    *group broadcast* — q concurrent broadcasts on disjoint slot
    groups, each progressed independently by the comm threads.  With
    ``rowcol=False`` the root slot fans its block out with linear
    point-to-point sends (the world-only API the groups replace).
    B rolls upward via the fused ``sendrecv_replace`` either way.
    """
    gpus_per_node = len(cluster.nodes[0].gpus)
    if cluster.n_nodes * gpus_per_node < cfg.p:
        raise ValueError("not enough GPUs for the Cannon grid")
    node_cfgs = []
    remaining = cfg.p
    for _n in range(cluster.n_nodes):
        g = min(gpus_per_node, remaining)
        remaining -= g
        if g > 0:
            node_cfgs.append(NodeConfig(cpu_threads=0, gpus=g, slots_per_gpu=1))
    rt = DcgnRuntime(cluster, DcgnConfig(node_cfgs))
    a, b = _make_inputs(cfg)
    c_blocks: Dict[int, np.ndarray] = {}
    marks = {}
    q = cfg.grid

    def gpu_worker(kctx):
        comm = kctx.comm
        rank = comm.rank(0)
        r, col = divmod(rank, q)
        up = ((r - 1) % q) * q + col
        down = ((r + 1) % q) * q + col
        device = kctx.device
        da = device.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="A")
        db = device.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="B")
        dw = device.alloc((cfg.block_n, cfg.block_n), dtype=cfg.dtype, name="W")
        da.data[...] = _block(a, cfg, r, col)
        db.data[...] = _block(b, cfg, (r + 0) % q, col)
        c_blk = np.zeros((cfg.block_n, cfg.block_n), dtype=np.float64)
        row = None
        if rowcol:
            row = yield from comm.split(0, color=r, key=col)
        yield from comm.barrier(0)
        t0 = kctx.sim.now
        for step in range(q):
            root_col = (r + step) % q
            if col == root_col:
                dw.data[...] = da.data
            if rowcol:
                yield from row.broadcast(0, root_col, dw)
            elif col == root_col:
                handles = []
                for dst in range(q):
                    if dst == col:
                        continue
                    h = yield from comm.isend(0, r * q + dst, dw)
                    handles.append(h)
                for h in handles:
                    yield from h.wait()
            else:
                yield from comm.recv(0, r * q + root_col, dw)
            yield from kctx.compute(seconds=_block_matmul_seconds(cfg))
            c_blk += dw.data.astype(np.float64) @ db.data.astype(np.float64)
            if step == q - 1:
                break
            yield from comm.sendrecv_replace(0, up, down, db)
        yield from comm.barrier(0)
        if rank == 0:
            marks["elapsed"] = kctx.sim.now - t0
        c_blocks[rank] = c_blk
        da.free()
        db.free()
        dw.free()

    rt.launch_gpu(gpu_worker, config=LaunchConfig(grid_blocks=1))
    rt.run(max_time=600.0)
    c = np.zeros((cfg.n, cfg.n), dtype=np.float64)
    for rank, blk in c_blocks.items():
        r, col = divmod(rank, q)
        bn = cfg.block_n
        c[r * bn : (r + 1) * bn, col * bn : (col + 1) * bn] = blk
    _verify(cfg, a, b, c)
    model = "dcgn-fox-" + ("rowcol" if rowcol else "world")
    return AppResult(elapsed=marks["elapsed"], units=cfg.p, model=model)
