"""Micro-benchmarks: sends, broadcasts, barriers (paper §5.2).

These drive the series of Figure 6 (send time vs size, five series),
Figure 7 (broadcast time vs size, three series), and Table 1 (barrier
timings per node/kernel configuration).  Each function builds a fresh
cluster, runs ``iters`` timed operations, and returns the mean seconds
per operation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from ..hw import build_cluster, paper_cluster
from ..hw.params import HWParams
from ..mpi import MpiJob, block_placement
from ..sim.core import Simulator

__all__ = [
    "mpi_send_time",
    "dcgn_send_time",
    "dcgn_multislot_latency",
    "mpi_bcast_time",
    "dcgn_bcast_time",
    "mpi_barrier_time",
    "dcgn_barrier_time",
]


def _cluster(n_nodes: int, params: Optional[HWParams], seed: int):
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=n_nodes, params=params, seed=seed)
    )
    return sim, cluster


# ---------------------------------------------------------------------------
# Point-to-point send timings (Figure 6)
# ---------------------------------------------------------------------------

def mpi_send_time(
    nbytes: int,
    iters: int = 5,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> float:
    """MVAPICH2 series: one-way inter-node send, seconds per message."""
    sim, cluster = _cluster(2, params, seed)
    job = MpiJob(cluster, [0, 1])
    marks = {}

    def prog(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        if ctx.rank == 0:
            for i in range(iters):
                yield from ctx.send(buf, dest=1, tag=0)
                yield from ctx.recv(buf, source=1, tag=1)  # ack
        else:
            t0 = None
            t_last = None
            for i in range(iters):
                yield from ctx.recv(buf, source=0, tag=0)
                t_last = ctx.sim.now
                if t0 is None:
                    t0 = ctx.sim.now  # skip first-message warmup
                yield from ctx.send(buf, dest=0, tag=1)
            marks["per_msg"] = (
                (t_last - t0) / max(iters - 1, 1) if iters > 1 else t_last
            )

    job.start(prog)
    job.run()
    if iters > 1:
        # Round trip = send + ack; halve for the one-way estimate.
        return marks["per_msg"] / 2.0
    return marks["per_msg"]


def dcgn_send_time(
    nbytes: int,
    src_kind: str = "cpu",
    dst_kind: str = "cpu",
    iters: int = 5,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> float:
    """DCGN series: one-way message time between two ranks (RTT/2).

    ``src_kind``/``dst_kind`` select the four Figure-6 series:
    "cpu"→"cpu", "cpu"→"gpu", "gpu"→"cpu", "gpu"→"gpu".
    Endpoints live on different nodes, as in the paper's cluster runs.
    Measured exactly like :func:`mpi_send_time` — a ping-pong halved —
    so the two series are directly comparable.
    """
    sim, cluster = _cluster(2, params, seed)
    need_cpu = [k == "cpu" for k in (src_kind, dst_kind)]
    need_gpu = [k == "gpu" for k in (src_kind, dst_kind)]
    cfg = DcgnConfig(
        [
            NodeConfig(
                cpu_threads=1 if need_cpu[0] else 0,
                gpus=1 if need_gpu[0] else 0,
                slots_per_gpu=1,
            ),
            NodeConfig(
                cpu_threads=1 if need_cpu[1] else 0,
                gpus=1 if need_gpu[1] else 0,
                slots_per_gpu=1,
            ),
        ]
    )
    rt = DcgnRuntime(cluster, cfg)
    src_rank = rt.rankmap.local_ranks(0)[0]
    dst_rank = rt.rankmap.local_ranks(1)[0]
    marks = {}

    def cpu_src(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        t0 = None
        for i in range(iters):
            yield from ctx.send(dst_rank, buf, nbytes=nbytes)
            yield from ctx.recv(dst_rank, buf, nbytes=nbytes)
            if t0 is None:
                t0 = ctx.sim.now  # first round warms the pollers up
        marks["elapsed"] = ctx.sim.now - t0
        marks["count"] = iters - 1

    def cpu_dst(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        for _ in range(iters):
            yield from ctx.recv(src_rank, buf, nbytes=nbytes)
            yield from ctx.send(src_rank, buf, nbytes=nbytes)

    def gpu_src(kctx):
        comm = kctx.comm
        dbuf = kctx.device.alloc(max(nbytes, 1), dtype=np.uint8)
        t0 = None
        for i in range(iters):
            yield from comm.send(0, dst_rank, dbuf, nbytes=nbytes)
            yield from comm.recv(0, dst_rank, dbuf, nbytes=nbytes)
            if t0 is None:
                t0 = kctx.sim.now
        marks["elapsed"] = kctx.sim.now - t0
        marks["count"] = iters - 1
        dbuf.free()

    def gpu_dst(kctx):
        comm = kctx.comm
        dbuf = kctx.device.alloc(max(nbytes, 1), dtype=np.uint8)
        for _ in range(iters):
            yield from comm.recv(0, src_rank, dbuf, nbytes=nbytes)
            yield from comm.send(0, src_rank, dbuf, nbytes=nbytes)
        dbuf.free()

    if src_kind == "cpu":
        rt.launch_cpu(cpu_src, ranks=[src_rank])
    else:
        rt.launch_gpu(gpu_src, gpus=[(0, 0)])
    if dst_kind == "cpu":
        rt.launch_cpu(cpu_dst, ranks=[dst_rank])
    else:
        rt.launch_gpu(gpu_dst, gpus=[(1, 0)])
    rt.run(max_time=120.0)
    if marks["count"] > 0:
        return marks["elapsed"] / marks["count"] / 2.0
    return marks["elapsed"] / 2.0


def dcgn_multislot_latency(
    slots: int,
    nbytes: int = 0,
    msgs_per_slot: int = 4,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> Dict[str, float]:
    """Multi-slot latency test (paper §4, Sending and Receiving).

    "We also implemented tests that used multiple slots per GPU to
    understand the behavior of our system with respect to latency."

    One GPU with ``slots`` slots streams messages to a CPU rank on the
    other node; each harvest can service every slot's posted request, so
    per-message cost *amortizes* with slot count.  Returns mean
    per-message latency and aggregate message rate.
    """
    sim, cluster = _cluster(2, params, seed)
    cfg = DcgnConfig(
        [
            NodeConfig(cpu_threads=0, gpus=1, slots_per_gpu=slots),
            NodeConfig(cpu_threads=1, gpus=0),
        ]
    )
    rt = DcgnRuntime(cluster, cfg)
    cpu_rank = rt.rankmap.cpu_ranks()[0]
    total = slots * msgs_per_slot
    marks: Dict[str, float] = {}

    def cpu_sink(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        t0 = ctx.sim.now
        for _ in range(total):
            yield from ctx.recv(-1, buf, nbytes=nbytes)  # ANY source
        marks["elapsed"] = ctx.sim.now - t0
        marks["per_msg"] = (ctx.sim.now - t0) / total

    def gpu_kernel(kctx):
        comm = kctx.comm
        slot = kctx.block_idx % comm.n_slots
        dbuf = kctx.device.alloc(max(nbytes, 1), dtype=np.uint8)
        for _ in range(msgs_per_slot):
            yield from comm.send(slot, cpu_rank, dbuf, nbytes=nbytes)
        dbuf.free()

    rt.launch_cpu(cpu_sink)
    rt.launch_gpu(gpu_kernel)
    rt.run(max_time=120.0)
    return marks


# ---------------------------------------------------------------------------
# Broadcast timings (Figure 7)
# ---------------------------------------------------------------------------

def mpi_bcast_time(
    nbytes: int,
    n_ranks: int = 8,
    n_nodes: int = 4,
    iters: int = 5,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> float:
    """MVAPICH2 broadcast, measured at the root over iterations."""
    sim, cluster = _cluster(n_nodes, params, seed)
    job = MpiJob(cluster, block_placement(n_ranks, n_nodes))
    marks = {}

    def prog(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        t0 = ctx.sim.now
        for _ in range(iters):
            yield from ctx.bcast(buf, root=0)
        t1 = ctx.sim.now
        # Closing barrier keeps ranks aligned but is excluded from the
        # root-side mean (the paper times at the root over iterations).
        yield from ctx.barrier()
        if ctx.rank == 0:
            marks["per_op"] = (t1 - t0) / iters

    job.start(prog)
    job.run()
    return marks["per_op"]


def dcgn_bcast_time(
    nbytes: int,
    kind: str = "cpu",
    n_ranks: int = 8,
    n_nodes: int = 4,
    iters: int = 5,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> float:
    """DCGN broadcast among ``n_ranks`` CPU or GPU ranks."""
    sim, cluster = _cluster(n_nodes, params, seed)
    per_node = n_ranks // n_nodes
    if kind == "cpu":
        cfg = DcgnConfig.homogeneous(n_nodes, cpu_threads=per_node)
    else:
        cfg = DcgnConfig.homogeneous(
            n_nodes, gpus=per_node, slots_per_gpu=1
        )
    rt = DcgnRuntime(cluster, cfg)
    marks = {}

    def cpu_kernel(ctx):
        buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
        t0 = ctx.sim.now
        for _ in range(iters):
            yield from ctx.broadcast(0, buf, nbytes=nbytes)
        t1 = ctx.sim.now
        yield from ctx.barrier()
        if ctx.rank == 0:
            marks["per_op"] = (t1 - t0) / iters

    def gpu_kernel(kctx):
        comm = kctx.comm
        dbuf = kctx.device.alloc(max(nbytes, 1), dtype=np.uint8)
        t0 = kctx.sim.now
        for _ in range(iters):
            yield from comm.broadcast(0, 0, dbuf, nbytes=nbytes)
        t1 = kctx.sim.now
        yield from comm.barrier(0)
        if comm.rank(0) == 0:
            marks["per_op"] = (t1 - t0) / iters
        dbuf.free()

    if kind == "cpu":
        rt.launch_cpu(cpu_kernel)
    else:
        rt.launch_gpu(gpu_kernel)
    rt.run(max_time=300.0)
    return marks["per_op"]


# ---------------------------------------------------------------------------
# Barrier timings (Table 1)
# ---------------------------------------------------------------------------

def mpi_barrier_time(
    n_ranks: int,
    n_nodes: int,
    iters: int = 10,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> float:
    """MVAPICH2 barrier, seconds per barrier."""
    sim, cluster = _cluster(n_nodes, params, seed)
    job = MpiJob(cluster, block_placement(n_ranks, n_nodes))
    marks = {}

    def prog(ctx):
        t0 = ctx.sim.now
        for _ in range(iters):
            yield from ctx.barrier()
        if ctx.rank == 0:
            marks["per_op"] = (ctx.sim.now - t0) / iters

    job.start(prog)
    job.run()
    return marks["per_op"]


def dcgn_barrier_time(
    n_nodes: int,
    cpu_threads: int,
    gpus: int,
    iters: int = 10,
    params: Optional[HWParams] = None,
    seed: int = 0,
    gap_s: float = 2e-3,
) -> Dict[str, float]:
    """DCGN barrier, seconds per barrier, measured at CPU and GPU ranks.

    Iterations are separated by ``gap_s`` of kernel work so each barrier
    is measured *cold* — matching the paper's harness, which timed
    individual barriers rather than a saturating barrier loop (a hot
    loop would ride the pollers' burst mode and measure lower).
    """
    sim, cluster = _cluster(n_nodes, params, seed)
    cfg = DcgnConfig.homogeneous(
        n_nodes, cpu_threads=cpu_threads, gpus=gpus, slots_per_gpu=1
    )
    rt = DcgnRuntime(cluster, cfg)
    marks: Dict[str, float] = {}

    def cpu_kernel(ctx):
        total = 0.0
        for _ in range(iters):
            yield from ctx.compute(gap_s)
            t0 = ctx.sim.now
            yield from ctx.barrier()
            total += ctx.sim.now - t0
        if ctx.rank == 0:
            marks["cpu"] = total / iters

    def gpu_kernel(kctx):
        comm = kctx.comm
        total = 0.0
        for _ in range(iters):
            yield from kctx.compute(seconds=gap_s)
            t0 = kctx.sim.now
            yield from comm.barrier(0)
            total += kctx.sim.now - t0
        if comm.rank(0) == comm.size - 1:
            marks["gpu"] = total / iters

    if cpu_threads:
        rt.launch_cpu(cpu_kernel)
    if gpus:
        rt.launch_gpu(gpu_kernel)
    rt.run(max_time=300.0)
    return marks
