"""Shared infrastructure for the test applications (paper §4)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["AppResult", "speedup", "efficiency"]


@dataclass
class AppResult:
    """Outcome of one application run."""

    #: Simulated wall-clock of the timed section (seconds).
    elapsed: float
    #: Number of computational units (paper's definition for efficiency).
    units: int
    #: Model used ("dcgn" | "gas" | "single").
    model: str
    #: Application-specific extras (pixels/s, strip owners, checksums...).
    extras: Dict[str, object] = field(default_factory=dict)

    def rate(self, work_items: float) -> float:
        """Work items per simulated second."""
        return work_items / self.elapsed if self.elapsed > 0 else float("inf")


def speedup(t_single: float, t_parallel: float) -> float:
    """Classic speedup T1/TN."""
    if t_parallel <= 0:
        raise ValueError("parallel time must be positive")
    return t_single / t_parallel


def efficiency(t_single: float, t_parallel: float, units: int) -> float:
    """Paper §5.1: speedup with N units divided by N."""
    if units < 1:
        raise ValueError("units must be >= 1")
    return speedup(t_single, t_parallel) / units
