"""Ping-pong latency test (paper Figures 1 and 3).

Sends a buffer A→B then B→A, over every endpoint combination the paper
exercises (CPU↔CPU, CPU↔GPU, GPU↔GPU), in both the DCGN and plain-MPI
models.  Used by the quickstart example and the latency tests.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from ..hw import build_cluster, paper_cluster
from ..hw.params import HWParams
from ..mpi import MpiJob
from ..sim.core import Simulator

__all__ = ["mpi_pingpong", "dcgn_pingpong"]


def mpi_pingpong(
    nbytes: int = 4,
    rounds: int = 10,
    params: Optional[HWParams] = None,
) -> Dict[str, float]:
    """MPI ping-pong between two ranks on two nodes.

    Returns round-trip seconds (mean) and verifies payload integrity.
    """
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2, params=params))
    job = MpiJob(cluster, [0, 1])
    marks = {}

    def prog(ctx):
        x = np.zeros(max(nbytes // 8, 1), dtype=np.int64)
        if ctx.rank == 0:
            x[0] = 1
            t0 = ctx.sim.now
            for _ in range(rounds):
                yield from ctx.send(x, dest=1)
                yield from ctx.recv(x, source=1)
            marks["rtt"] = (ctx.sim.now - t0) / rounds
            marks["final"] = int(x[0])
        else:
            for _ in range(rounds):
                yield from ctx.recv(x, source=0)
                x[0] += 1
                yield from ctx.send(x, dest=0)

    job.start(prog)
    job.run()
    assert marks["final"] == rounds + 1
    return marks


def dcgn_pingpong(
    nbytes: int = 4,
    rounds: int = 10,
    endpoints: str = "cpu-cpu",
    params: Optional[HWParams] = None,
) -> Dict[str, float]:
    """DCGN ping-pong; ``endpoints`` ∈ {cpu-cpu, gpu-gpu, cpu-gpu}."""
    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2, params=params))
    a_kind, b_kind = endpoints.split("-")
    cfg = DcgnConfig(
        [
            NodeConfig(
                cpu_threads=1 if a_kind == "cpu" else 0,
                gpus=1 if a_kind == "gpu" else 0,
            ),
            NodeConfig(
                cpu_threads=1 if b_kind == "cpu" else 0,
                gpus=1 if b_kind == "gpu" else 0,
            ),
        ]
    )
    rt = DcgnRuntime(cluster, cfg)
    a_rank = rt.rankmap.local_ranks(0)[0]
    b_rank = rt.rankmap.local_ranks(1)[0]
    marks: Dict[str, float] = {}
    count = max(nbytes // 8, 1)

    def cpu_a(ctx):
        x = np.zeros(count, dtype=np.int64)
        x[0] = 1
        t0 = ctx.sim.now
        for _ in range(rounds):
            yield from ctx.send(b_rank, x)
            yield from ctx.recv(b_rank, x)
        marks["rtt"] = (ctx.sim.now - t0) / rounds
        marks["final"] = int(x[0])

    def cpu_b(ctx):
        x = np.zeros(count, dtype=np.int64)
        for _ in range(rounds):
            yield from ctx.recv(a_rank, x)
            x[0] += 1
            yield from ctx.send(a_rank, x)

    def gpu_a(kctx):
        comm = kctx.comm
        dbuf = kctx.device.alloc(count, dtype=np.int64)
        dbuf.data[0] = 1
        t0 = kctx.sim.now
        for _ in range(rounds):
            yield from comm.send(0, b_rank, dbuf)
            yield from comm.recv(0, b_rank, dbuf)
        marks["rtt"] = (kctx.sim.now - t0) / rounds
        marks["final"] = int(dbuf.data[0])
        dbuf.free()

    def gpu_b(kctx):
        comm = kctx.comm
        dbuf = kctx.device.alloc(count, dtype=np.int64)
        for _ in range(rounds):
            yield from comm.recv(0, a_rank, dbuf)
            dbuf.data[0] += 1
            yield from comm.send(0, a_rank, dbuf)
        dbuf.free()

    if a_kind == "cpu":
        rt.launch_cpu(cpu_a, ranks=[a_rank])
    else:
        rt.launch_gpu(gpu_a, gpus=[(0, 0)])
    if b_kind == "cpu":
        rt.launch_cpu(cpu_b, ranks=[b_rank])
    else:
        rt.launch_gpu(gpu_b, gpus=[(1, 0)])
    rt.run(max_time=120.0)
    assert marks["final"] == rounds + 1
    return marks
