"""Brute-force N-body simulation — one-to-all communication (paper §4).

"Given N bodies and P processors, the distributed algorithm works by
each processor accumulating the force of all N bodies on N/P bodies.
... Once all forces are calculated and applied, each communication
target broadcasts its updated bodies to the rest of the targets."

The force kernel is O(N²/P) per step; the per-step communication is P
broadcasts of N/P bodies.  This ratio produces the paper's efficiency
curve: ~28% at 4k bodies, ~64% at 16k, >90% at 32k (8 GPUs) — and DCGN
matches GAS because computation dominates communication (§5.1).

Physics is real (softened gravity, symplectic Euler, float64 on the
wire) and verified against a NumPy reference integrator.  For large-N
*timing* runs — the efficiency curve needs N up to 32k, where all-pairs
NumPy physics would dominate wall-clock — set ``verify=False``: every
byte of communication and every second of modelled compute is still
charged, but bodies carry placeholder data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from ..gas import GasJob
from ..gpusim import LaunchConfig
from ..hw.cluster import Cluster
from ..sim.core import Simulator
from .common import AppResult

__all__ = [
    "NBodyConfig",
    "reference_trajectory",
    "run_single_gpu",
    "run_gas",
    "run_dcgn",
]

#: Wire bytes per body: float64 x, y, z + padding.
BODY_NBYTES = 32


@dataclass(frozen=True)
class NBodyConfig:
    """Workload parameters (``flops_per_interaction`` ≈ 20, GPU Gems 3)."""

    n_bodies: int = 4096
    steps: int = 4
    dt: float = 1e-3
    softening: float = 1e-2
    flops_per_interaction: float = 20.0
    seed: int = 11
    #: Run real physics and verify against the reference integrator.
    verify: bool = True


def _initial_state(cfg: NBodyConfig):
    rng = np.random.default_rng(cfg.seed)
    pos = rng.standard_normal((cfg.n_bodies, 3))
    vel = rng.standard_normal((cfg.n_bodies, 3)) * 0.1
    mass = rng.uniform(0.5, 2.0, cfg.n_bodies)
    return pos, vel, mass


def _accel_block(
    pos: np.ndarray,
    mass: np.ndarray,
    softening: float,
    lo: int,
    hi: int,
) -> np.ndarray:
    """Softened gravitational acceleration on bodies [lo, hi)."""
    diff = pos[None, :, :] - pos[lo:hi, None, :]  # [i-lo, j, 3]
    dist2 = (diff * diff).sum(axis=2) + softening * softening
    inv_d3 = dist2 ** -1.5
    # A body exerts no force on itself.
    for i in range(lo, hi):
        inv_d3[i - lo, i] = 0.0
    return (diff * (mass[None, :, None] * inv_d3[:, :, None])).sum(axis=1)


def reference_trajectory(cfg: NBodyConfig) -> np.ndarray:
    """Positions after cfg.steps of symplectic-Euler integration."""
    pos, vel, mass = _initial_state(cfg)
    pos, vel = pos.copy(), vel.copy()
    for _ in range(cfg.steps):
        acc = _accel_block(pos, mass, cfg.softening, 0, cfg.n_bodies)
        vel += acc * cfg.dt
        pos += vel * cfg.dt
    return pos


def _chunk_bounds(n_bodies: int, p: int, rank: int) -> Tuple[int, int]:
    base = n_bodies // p
    extra = n_bodies % p
    lo = rank * base + min(rank, extra)
    hi = lo + base + (1 if rank < extra else 0)
    return lo, hi


def _force_seconds(cfg: NBodyConfig, device, n_local: int) -> float:
    flops = float(n_local) * cfg.n_bodies * cfg.flops_per_interaction
    return flops / (device.params.gflops * 1e9)


def _verify(cfg: NBodyConfig, pos: np.ndarray) -> None:
    ref = reference_trajectory(cfg)
    if not np.allclose(pos, ref, rtol=1e-9, atol=1e-12):
        err = np.max(np.abs(pos - ref))
        raise AssertionError(f"n-body positions off by {err:.2e}")


def run_single_gpu(cluster: Cluster, cfg: NBodyConfig) -> AppResult:
    """Whole simulation on one GPU (the efficiency baseline)."""
    sim = cluster.sim
    device = cluster.nodes[0].gpus[0]
    marks = {}

    def kernel(ctx):
        for _ in range(cfg.steps):
            yield from ctx.compute(
                seconds=_force_seconds(cfg, device, cfg.n_bodies)
            )

    def host():
        from ..gpusim.driver import launch, memcpy_d2h, memcpy_h2d

        wire = np.zeros(cfg.n_bodies * BODY_NBYTES, dtype=np.uint8)
        dpos = device.alloc(wire.size, dtype=np.uint8, name="pos")
        t0 = sim.now
        yield from memcpy_h2d(device, dpos, wire)
        handle = yield from launch(device, kernel, LaunchConfig(grid_blocks=1))
        yield handle.done
        yield from memcpy_d2h(device, wire, dpos)
        marks["elapsed"] = sim.now - t0
        dpos.free()

    sim.process(host(), name="nbody.single")
    sim.run()
    return AppResult(elapsed=marks["elapsed"], units=1, model="single")


def run_gas(cluster: Cluster, cfg: NBodyConfig) -> AppResult:
    """One MPI process per GPU; per-step broadcast of each chunk."""
    job = GasJob.all_gpus(cluster, with_master=False)
    p = job.size
    marks = {}
    final_pos = np.zeros((cfg.n_bodies, 3))
    pos0, vel0, mass = _initial_state(cfg)

    def worker(ctx):
        rank = ctx.rank
        lo, hi = _chunk_bounds(cfg.n_bodies, p, rank)
        n_local = hi - lo
        if cfg.verify:
            pos = pos0.copy()
            vel = vel0[lo:hi].copy()
        dchunk = ctx.alloc(n_local * BODY_NBYTES, dtype=np.uint8, name="chunk")
        dfull = ctx.alloc(
            cfg.n_bodies * BODY_NBYTES, dtype=np.uint8, name="allpos"
        )
        t0 = ctx.sim.now

        def kernel(kctx):
            yield from kctx.compute(
                seconds=_force_seconds(cfg, kctx.device, n_local)
            )

        for _ in range(cfg.steps):
            yield from ctx.run_kernel(kernel, LaunchConfig(grid_blocks=1))
            if cfg.verify:
                acc = _accel_block(pos, mass, cfg.softening, lo, hi)
                vel += acc * cfg.dt
                pos[lo:hi] += vel * cfg.dt
            # Pull my updated chunk off the device.
            my_wire = np.zeros(n_local * BODY_NBYTES, dtype=np.uint8)
            yield from ctx.pull(my_wire, dchunk)
            if cfg.verify:
                my_wire[: n_local * 24].view(np.float64)[:] = pos[
                    lo:hi
                ].reshape(-1)
            # Every target broadcasts its updated bodies (paper §4).
            for root in range(p):
                rlo, rhi = _chunk_bounds(cfg.n_bodies, p, root)
                buf = (
                    my_wire
                    if root == rank
                    else np.zeros((rhi - rlo) * BODY_NBYTES, dtype=np.uint8)
                )
                yield from ctx.mpi.bcast(buf, root=root)
                if cfg.verify and root != rank:
                    pos[rlo:rhi] = (
                        buf[: (rhi - rlo) * 24]
                        .view(np.float64)
                        .reshape(rhi - rlo, 3)
                    )
            # Push the refreshed global state (the chunks received from
            # the other ranks) back to the device for the next step.
            recv_bytes = (cfg.n_bodies - n_local) * BODY_NBYTES
            if recv_bytes > 0:
                wire_all = np.zeros(recv_bytes, dtype=np.uint8)
                yield from ctx.push(dfull, wire_all, nbytes=recv_bytes)
        yield from ctx.mpi.barrier()
        if rank == 0:
            marks["elapsed"] = ctx.sim.now - t0
            if cfg.verify:
                final_pos[...] = pos
        dchunk.free()
        dfull.free()

    job.start(worker)
    job.run()
    if cfg.verify:
        _verify(cfg, final_pos)
    return AppResult(elapsed=marks["elapsed"], units=p, model="gas")


def run_dcgn(
    cluster: Cluster, cfg: NBodyConfig, overlap: bool = False
) -> AppResult:
    """GPU kernels broadcast their chunks from inside the kernel.

    With ``overlap=True`` the per-step one-to-all exchange issues all P
    broadcasts nonblockingly (``ibroadcast``) before waiting: the comm
    thread pipelines them back-to-back instead of paying a full
    post→poll→wire→writeback round trip per root.  Physics and results
    are unchanged.
    """
    gpus_per_node = len(cluster.nodes[0].gpus)
    node_cfgs = [
        NodeConfig(cpu_threads=0, gpus=gpus_per_node, slots_per_gpu=1)
        for _ in range(cluster.n_nodes)
    ]
    rt = DcgnRuntime(cluster, DcgnConfig(node_cfgs))
    p = len(rt.rankmap.gpu_ranks())
    marks = {}
    final_pos = np.zeros((cfg.n_bodies, 3))
    pos0, vel0, mass = _initial_state(cfg)

    def gpu_worker(kctx):
        comm = kctx.comm
        rank = comm.rank(0)
        device = kctx.device
        lo, hi = _chunk_bounds(cfg.n_bodies, p, rank)
        n_local = hi - lo
        if cfg.verify:
            pos = pos0.copy()
            vel = vel0[lo:hi].copy()
        # One device buffer per chunk (broadcast payload endpoints).
        chunk_bufs = []
        for r in range(p):
            rlo, rhi = _chunk_bounds(cfg.n_bodies, p, r)
            chunk_bufs.append(
                device.alloc((rhi - rlo) * BODY_NBYTES, dtype=np.uint8,
                             name=f"chunk{r}")
            )
        t0 = kctx.sim.now
        for _ in range(cfg.steps):
            yield from kctx.compute(
                seconds=_force_seconds(cfg, device, n_local)
            )
            if cfg.verify:
                acc = _accel_block(pos, mass, cfg.softening, lo, hi)
                vel += acc * cfg.dt
                pos[lo:hi] += vel * cfg.dt
                chunk_bufs[rank].data[: n_local * 24].view(np.float64)[:] = (
                    pos[lo:hi].reshape(-1)
                )
            if overlap:
                handles = []
                for root in range(p):
                    h = yield from comm.ibroadcast(0, root, chunk_bufs[root])
                    handles.append(h)
                for h in handles:
                    yield from h.wait()
                for root in range(p):
                    if cfg.verify and root != rank:
                        rlo, rhi = _chunk_bounds(cfg.n_bodies, p, root)
                        pos[rlo:rhi] = (
                            chunk_bufs[root]
                            .data[: (rhi - rlo) * 24]
                            .view(np.float64)
                            .reshape(rhi - rlo, 3)
                        )
            else:
                for root in range(p):
                    yield from comm.broadcast(0, root, chunk_bufs[root])
                    if cfg.verify and root != rank:
                        rlo, rhi = _chunk_bounds(cfg.n_bodies, p, root)
                        pos[rlo:rhi] = (
                            chunk_bufs[root]
                            .data[: (rhi - rlo) * 24]
                            .view(np.float64)
                            .reshape(rhi - rlo, 3)
                        )
        yield from comm.barrier(0)
        if rank == 0:
            marks["elapsed"] = kctx.sim.now - t0
            if cfg.verify:
                final_pos[...] = pos
        for b in chunk_bufs:
            b.free()

    rt.launch_gpu(gpu_worker, config=LaunchConfig(grid_blocks=1))
    rt.run(max_time=600.0)
    if cfg.verify:
        _verify(cfg, final_pos)
    return AppResult(elapsed=marks["elapsed"], units=p, model="dcgn")
