"""Jacobi 2-D stencil: the halo-exchange application family.

A (rows × cols) grid with fixed (Dirichlet) edges is decomposed into
horizontal strips, one per rank; every iteration each rank refreshes
its two ghost rows from its neighbors — the *halo exchange* — then
relaxes its interior.  The exchange is the classic neighbor-traffic hot
path, and this app ships it in four interchangeable MPI flavours plus a
DCGN GPU-kernel-driven one, which is what ``benchmarks/bench_rma.py``
sweeps against each other:

``blocking``
    The textbook deadlock-avoiding two-sided version: four
    parity-ordered blocking send/recv phases (evens send down while
    odds receive, then the mirror, then the same upward).  Each phase
    serializes behind the previous one — the baseline RMA removes.
``nonblocking``
    ``irecv``/``isend`` both directions, then wait — the overlapped
    two-sided version.
``rma_fence``
    Each rank exposes its whole slab as an MPI-3 window; neighbors
    ``put`` boundary rows straight into its ghost rows and a fence
    closes the epoch.  No matching, no rendezvous, no per-message
    receiver software: the halo lands by RDMA.
``rma_pscw``
    Same puts under post-start-complete-wait: synchronization only
    with the actual neighbors instead of a world fence — the cheaper
    sync when the stencil's dependency graph is sparse.
``rma_fence_chunked`` / ``rma_fence_coalesced``
    The strided-halo variants: each boundary row leaves as many small
    column-block puts per epoch.  ``chunked`` pays per-put wire
    latency; ``coalesced`` runs the same puts on a ``coalesce=True``
    window, so they batch onto one wire transfer per neighbor at the
    fence (MVAPICH2-style operation coalescing).

``run_dcgn`` drives the same stencil from GPU kernels: each kernel
pushes its boundary rows into the neighbor's window region with the
slot ``put`` API (GPU-sourced, matching-free) and pulls its refreshed
ghost rows back after a barrier.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from ..hw.cluster import Cluster
from ..mpi.communicator import MpiContext
from ..mpi.job import MpiJob, block_placement
from ..sim.core import Event
from .common import AppResult

__all__ = [
    "JacobiConfig",
    "MPI_BACKENDS",
    "reference",
    "run_mpi",
    "run_dcgn",
]

#: Tags of the downward- and upward-moving halo streams.
_TAG_DOWN = 11
_TAG_UP = 12

MPI_BACKENDS = (
    "blocking",
    "nonblocking",
    "rma_fence",
    "rma_pscw",
    "rma_fence_chunked",
    "rma_fence_coalesced",
)

#: Column blocks per halo row in the chunked fence variants (the
#: strided-halo pattern: many small puts per neighbor per epoch).
_HALO_CHUNKS = 8


@dataclass(frozen=True)
class JacobiConfig:
    """Shape of one Jacobi run.

    The global grid is ``(p * rows_per_rank + 2) × cols``: every rank
    owns ``rows_per_rank`` interior rows, the outermost rows/columns
    are fixed boundary.  One halo row is ``cols * 8`` bytes — size the
    halos through ``cols``.
    """

    p: int
    rows_per_rank: int = 4
    cols: int = 256
    iters: int = 4
    #: Per-rank stencil throughput used to charge compute time
    #: (GFLOP/s; the 4-flop update is strongly memory-bound).
    gflops: float = 4.0
    verify: bool = True

    def __post_init__(self) -> None:
        if self.p < 2:
            raise ValueError("jacobi needs at least 2 ranks")
        if self.rows_per_rank < 1 or self.cols < 3:
            raise ValueError("strip too small")
        if self.iters < 1:
            raise ValueError("need at least one iteration")

    @property
    def rows(self) -> int:
        """Global rows including the two boundary rows."""
        return self.p * self.rows_per_rank + 2

    @property
    def halo_bytes(self) -> int:
        """Bytes of one halo row."""
        return self.cols * 8

    def compute_seconds(self) -> float:
        """Modelled per-rank relaxation time of one iteration."""
        flops = 4.0 * self.rows_per_rank * max(1, self.cols - 2)
        return flops / (self.gflops * 1e9)


def _init_field(cfg: JacobiConfig) -> np.ndarray:
    """Deterministic initial condition (no RNG: reproducible)."""
    i = np.arange(cfg.rows, dtype=np.float64)[:, None]
    j = np.arange(cfg.cols, dtype=np.float64)[None, :]
    return ((i * 13.0 + j * 7.0) % 101.0) / 101.0


def reference(cfg: JacobiConfig) -> np.ndarray:
    """Sequential Jacobi, the ground truth every backend must match."""
    u = _init_field(cfg)
    new = u.copy()
    for _ in range(cfg.iters):
        new[1:-1, 1:-1] = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        )
        u, new = new, u
    return u


def _relax(u: np.ndarray, new: np.ndarray) -> None:
    """One local relaxation: interior of ``u`` (with ghosts) → ``u``."""
    new[1:-1, 1:-1] = 0.25 * (
        u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
    )
    u[1:-1, 1:-1] = new[1:-1, 1:-1]


# ---------------------------------------------------------------------------
# MPI halo-exchange backends
# ---------------------------------------------------------------------------

def _exchange_blocking(ctx, u, k, up, down):
    """Parity-ordered blocking two-sided exchange (4 serialized phases)."""
    even = ctx.rank % 2 == 0
    # Downward stream: my bottom data row becomes down's top ghost.
    if even:
        if down is not None:
            yield from ctx.send(u[k], down, tag=_TAG_DOWN)
    elif up is not None:
        yield from ctx.recv(u[0], up, tag=_TAG_DOWN)
    if not even:
        if down is not None:
            yield from ctx.send(u[k], down, tag=_TAG_DOWN)
    elif up is not None:
        yield from ctx.recv(u[0], up, tag=_TAG_DOWN)
    # Upward stream: my top data row becomes up's bottom ghost.
    if even:
        if up is not None:
            yield from ctx.send(u[1], up, tag=_TAG_UP)
    elif down is not None:
        yield from ctx.recv(u[k + 1], down, tag=_TAG_UP)
    if not even:
        if up is not None:
            yield from ctx.send(u[1], up, tag=_TAG_UP)
    elif down is not None:
        yield from ctx.recv(u[k + 1], down, tag=_TAG_UP)


def _exchange_nonblocking(ctx, u, k, up, down):
    """Overlapped two-sided exchange: post everything, then wait."""
    reqs = []
    if up is not None:
        reqs.append(ctx.irecv(u[0], up, tag=_TAG_DOWN))
        reqs.append(ctx.isend(u[1], up, tag=_TAG_UP))
    if down is not None:
        reqs.append(ctx.irecv(u[k + 1], down, tag=_TAG_UP))
        reqs.append(ctx.isend(u[k], down, tag=_TAG_DOWN))
    for r in reqs:
        yield from r.wait()


def _exchange_rma_fence(wctx, u, k, cols, up, down):
    """One-sided halo: put boundary rows into the neighbors' ghost rows
    (their window offsets), close the epoch with a fence."""
    if down is not None:
        yield from wctx.put(down, u[k], offset=0)
    if up is not None:
        yield from wctx.put(up, u[1], offset=(k + 1) * cols)
    yield from wctx.fence()


def _exchange_rma_fence_chunked(wctx, u, k, cols, up, down):
    """Column-blocked halo pushes: each boundary row leaves as
    ``_HALO_CHUNKS`` separate small puts (the strided-halo pattern real
    stencils with non-contiguous boundaries produce).  On a plain
    window every chunk pays its own header and fabric latency; on a
    ``coalesce=True`` window the per-neighbor chunks merge onto one
    wire transfer at the fence — the MVAPICH2-style coalescing win
    ``bench_rma.py`` gates."""
    bounds = [(c * cols) // _HALO_CHUNKS for c in range(_HALO_CHUNKS + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        if down is not None:
            yield from wctx.put(down, u[k, lo:hi], offset=lo)
        if up is not None:
            yield from wctx.put(
                up, u[1, lo:hi], offset=(k + 1) * cols + lo
            )
    yield from wctx.fence()


def _exchange_rma_pscw(wctx, u, k, cols, up, down, nbrs):
    """Same puts under PSCW: synchronize with the neighbors only."""
    yield from wctx.post(nbrs)
    yield from wctx.start(nbrs)
    if down is not None:
        yield from wctx.put(down, u[k], offset=0)
    if up is not None:
        yield from wctx.put(up, u[1], offset=(k + 1) * cols)
    yield from wctx.complete()
    yield from wctx.wait_sync()


def run_mpi(
    cluster: Cluster,
    cfg: JacobiConfig,
    backend: str = "blocking",
    placement: Optional[List[int]] = None,
    exec_backend: str = "exact",
) -> AppResult:
    """Run the stencil under one of :data:`MPI_BACKENDS`.

    ``exec_backend`` selects the simulator's timing engine
    (``"exact"`` | ``"analytic"`` | ``"pricing"``): the analytic
    backends price collectives and window epochs without per-op wire
    processes, which is what makes 1024-rank halo sweeps interactive.
    ``"pricing"`` moves no data, so verification is skipped.
    """
    if backend not in MPI_BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; pick one of {MPI_BACKENDS}"
        )
    if placement is None:
        placement = block_placement(cfg.p, cluster.n_nodes)
    job = MpiJob(cluster, placement, backend=exec_backend)
    field = _init_field(cfg)
    strips: Dict[int, np.ndarray] = {}
    marks: Dict[str, float] = {}
    k, cols = cfg.rows_per_rank, cfg.cols

    def worker(ctx: MpiContext) -> Generator[Event, Any, None]:
        r = ctx.rank
        up = r - 1 if r > 0 else None
        down = r + 1 if r < cfg.p - 1 else None
        nbrs = [n for n in (up, down) if n is not None]
        # Local slab with ghost rows; rank r owns global rows
        # [1 + r*k, 1 + (r+1)*k).
        u = field[r * k : r * k + k + 2].copy()
        new = u.copy()
        wctx = None
        if backend.startswith("rma_"):
            wctx = yield from ctx.win_create(
                u, coalesce=(backend == "rma_fence_coalesced")
            )
            if backend != "rma_pscw":
                yield from wctx.fence()  # open the first epoch
        yield from ctx.barrier()
        if r == 0:
            marks["t0"] = ctx.sim.now
        for _ in range(cfg.iters):
            if backend == "blocking":
                yield from _exchange_blocking(ctx, u, k, up, down)
            elif backend == "nonblocking":
                yield from _exchange_nonblocking(ctx, u, k, up, down)
            elif backend == "rma_fence":
                yield from _exchange_rma_fence(
                    wctx, u, k, cols, up, down
                )
            elif backend in ("rma_fence_chunked", "rma_fence_coalesced"):
                yield from _exchange_rma_fence_chunked(
                    wctx, u, k, cols, up, down
                )
            else:
                yield from _exchange_rma_pscw(
                    wctx, u, k, cols, up, down, nbrs
                )
            yield ctx.sim.timeout(cfg.compute_seconds())
            _relax(u, new)
        yield from ctx.barrier()
        if r == 0:
            marks["t1"] = ctx.sim.now
        strips[r] = u

    job.start(worker)
    job.run()
    result = _assemble(
        cfg, field, strips, verify=(exec_backend != "pricing")
    )
    return AppResult(
        elapsed=marks["t1"] - marks["t0"],
        units=cfg.p,
        model="mpi",
        extras={"backend": backend, "checksum": float(result.sum())},
    )


def _assemble(
    cfg: JacobiConfig,
    field: np.ndarray,
    strips: Dict[int, np.ndarray],
    verify: bool = True,
) -> np.ndarray:
    """Stitch the per-rank strips back together and (optionally) verify
    against the sequential reference."""
    k = cfg.rows_per_rank
    out = field.copy()
    for r, strip in strips.items():
        out[1 + r * k : 1 + (r + 1) * k] = strip[1 : k + 1]
    if cfg.verify and verify:
        ref = reference(cfg)
        if not np.allclose(out, ref, atol=1e-12):
            err = float(np.abs(out - ref).max())
            raise AssertionError(
                f"jacobi field mismatch (max err {err:.3e})"
            )
    return out


# ---------------------------------------------------------------------------
# DCGN: GPU-kernel-driven one-sided halo exchange
# ---------------------------------------------------------------------------

def run_dcgn(
    cluster: Cluster, cfg: JacobiConfig, backend: str = "exact"
) -> AppResult:
    """GPU kernels push halos into the neighbors' window regions.

    One GPU slot per rank.  Each iteration the kernel ``put``s its
    boundary rows into the adjacent ranks' window regions (the paper's
    GPU-as-source idea, now with no matching receive anywhere), crosses
    a barrier, ``get``s its two refreshed ghost rows from its *own*
    region, and relaxes.

    ``backend`` selects the node-level MPI timing engine the comm
    threads ride (``"exact"`` | ``"analytic"`` | ``"pricing"``; see
    :class:`~repro.dcgn.DcgnConfig`).  ``"pricing"`` moves no window
    data, so verification is skipped.
    """
    from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
    from ..gpusim.kernel import LaunchConfig

    gpus_per_node = len(cluster.nodes[0].gpus)
    if cluster.n_nodes * gpus_per_node < cfg.p:
        raise ValueError("not enough GPUs for the Jacobi strips")
    node_cfgs = []
    remaining = cfg.p
    for _ in range(cluster.n_nodes):
        g = min(gpus_per_node, remaining)
        remaining -= g
        if g > 0:
            node_cfgs.append(NodeConfig(gpus=g, slots_per_gpu=1))
    k, cols = cfg.rows_per_rank, cfg.cols
    rt = DcgnRuntime(
        cluster,
        DcgnConfig(
            node_cfgs, windows={"halo": (k + 2) * cols}, backend=backend
        ),
    )
    field = _init_field(cfg)
    strips: Dict[int, np.ndarray] = {}
    marks: Dict[str, float] = {}

    def kernel(kctx):
        comm = kctx.comm
        me = comm.rank(0)
        up = me - 1 if me > 0 else None
        down = me + 1 if me < cfg.p - 1 else None
        dev = kctx.device
        u = dev.alloc((k + 2, cols), name="slab")
        u.data[...] = field[me * k : me * k + k + 2]
        new = u.data.copy()
        row_top = dev.alloc(cols, name="row_top")
        row_bot = dev.alloc(cols, name="row_bot")
        ghosts = dev.alloc(cols, name="ghosts")
        # Seed my own window region with the slab so ghost reads of the
        # fixed global boundary rows stay valid.
        rt.window("halo").region(me)[...] = u.data.reshape(-1)
        yield from comm.barrier(0)
        if me == 0:
            marks["t0"] = kctx.sim.now
        row_nbytes = cols * 8
        for _ in range(cfg.iters):
            if down is not None:
                row_bot.data[...] = u.data[k]
                yield from comm.put(
                    0, "halo", down, row_bot, offset=0,
                    nbytes=row_nbytes,
                )
            if up is not None:
                row_top.data[...] = u.data[1]
                yield from comm.put(
                    0, "halo", up, row_top, offset=(k + 1) * cols,
                    nbytes=row_nbytes,
                )
            yield from comm.barrier(0)
            if up is not None:
                yield from comm.get(
                    0, "halo", me, ghosts, offset=0, nbytes=row_nbytes
                )
                u.data[0] = ghosts.data
            if down is not None:
                yield from comm.get(
                    0, "halo", me, ghosts, offset=(k + 1) * cols,
                    nbytes=row_nbytes,
                )
                u.data[k + 1] = ghosts.data
            # Second barrier: nobody may overwrite a window region with
            # next-iteration halos until every rank has read this
            # iteration's (the gets go through the polled comm path, so
            # wire latency alone does not order them as it does for the
            # in-place MPI window variants).
            yield from comm.barrier(0)
            yield from kctx.compute(seconds=cfg.compute_seconds())
            _relax(u.data, new)
        yield from comm.barrier(0)
        if me == 0:
            marks["t1"] = kctx.sim.now
        strips[me] = u.data.copy()
        for buf in (u, row_top, row_bot, ghosts):
            buf.free()

    rt.launch_gpu(kernel, config=LaunchConfig(grid_blocks=1))
    rt.run(max_time=600.0)
    result = _assemble(cfg, field, strips, verify=(backend != "pricing"))
    return AppResult(
        elapsed=marks["t1"] - marks["t0"],
        units=cfg.p,
        model="dcgn",
        extras={"backend": "dcgn_rma", "checksum": float(result.sum())},
    )
