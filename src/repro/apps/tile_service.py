"""Mandelbrot tile service: a request-serving job for the scheduler.

The batch apps render one image and exit; a *serving* workload answers
an endless stream of small requests.  This service turns the paper's
Mandelbrot strips (§4) into that shape: each request names one tile (a
strip of the image), the job's rank 0 dispatches it to the whole worker
group, every rank computes its share of the escape-time iterations, and
the pixels gather back to rank 0 — a fan-out/fan-in with a
bandwidth-dominated collective, i.e. the batch-inference request shape.
Requests are served **serially** per job (one dispatcher), so a job is
an M/D/1-ish server: offered load beyond ``1/service_time`` builds a
queue and the tail latency takes off — the knee the serving benchmark
sweeps across.

The interesting part is what the service *exposes*: its per-request
collective runs on whatever sub-communicator the scheduler placed the
job on, so service time directly reflects placement quality (a packed
pod vs. nodes scattered across an oversubscribed fat tree).

Wiring: build a :class:`TileService`, submit its
:meth:`~TileService.job_spec` to a
:class:`~repro.serve.scheduler.ClusterScheduler`, and drive
:meth:`~TileService.submit`/:meth:`~TileService.close` — usually via
:class:`~repro.serve.workload.OpenLoopDriver`.  Latencies land in
``service.log``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from ..serve.scheduler import JobSpec
from ..serve.workload import RequestLog
from ..sim.core import Event, Simulator
from .mandelbrot import (
    STOP,
    MandelbrotConfig,
    mandelbrot_reference,
    strip_iteration_counts,
)

__all__ = ["TileServiceConfig", "TileService"]


@dataclass(frozen=True)
class TileServiceConfig:
    """Shape of the tile-rendering requests.

    ``gflops`` is each rank's escape-time throughput (the compute side
    of a request; the strip's iteration count divides evenly across the
    job).  ``max_queue`` bounds the dispatcher's backlog — arrivals
    beyond it are dropped and counted, the load-shedding a production
    front door would do (``None`` = unbounded, the pure open-loop
    measurement).
    """

    tile: MandelbrotConfig = field(
        default_factory=lambda: MandelbrotConfig(
            width=512, height=512, strip_height=32, max_iter=128
        )
    )
    gflops: float = 500.0
    max_queue: Optional[int] = None


class TileService:
    """One tile-rendering job's front door + rank programs."""

    def __init__(
        self,
        sim: Simulator,
        cfg: Optional[TileServiceConfig] = None,
        name: str = "tiles",
    ) -> None:
        self.sim = sim
        self.cfg = cfg or TileServiceConfig()
        self.name = name
        self.log = RequestLog(sim)
        #: Last-rendered pixels per strip id (rank 0's assembly).
        self.rendered: Dict[int, np.ndarray] = {}
        self._queue: List[Any] = []
        self._closed = False
        self._wake: Event = sim.event(name=f"tiles.{name}.wake")
        self._iters = strip_iteration_counts(self.cfg.tile)

    # -- front door (driver side) ------------------------------------------
    def submit(self, req_id: int) -> None:
        """Offer a request (tile = ``req_id mod n_strips``)."""
        cfg = self.cfg
        strip = req_id % cfg.tile.n_strips
        req = self.log.arrived(req_id, payload=strip)
        if (
            cfg.max_queue is not None
            and len(self._queue) >= cfg.max_queue
        ):
            self.log.dropped(req)
            return
        self._queue.append(req)
        self._kick()

    def close(self) -> None:
        """No more arrivals; the dispatcher drains the queue and stops."""
        self._closed = True
        self._kick()

    def _kick(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()

    # -- job wiring ---------------------------------------------------------
    def job_spec(self, n_nodes: int) -> JobSpec:
        """A scheduler-ready spec running this service on ``n_nodes``."""
        return JobSpec(
            name=self.name, n_nodes=n_nodes, program=self.rank_program
        )

    def rank_program(
        self, ctx
    ) -> Generator[Event, Any, None]:
        """Per-rank program: rank 0 dispatches, everyone renders."""
        if ctx.comm.backend == "pricing":
            raise ValueError(
                "TileService needs real data on the wire (the STOP "
                "sentinel rides the descriptor bcast); use the "
                "'exact' or 'analytic' backend"
            )
        if ctx.rank == 0:
            yield from self._dispatch(ctx)
        else:
            yield from self._serve_loop(ctx)

    # -- rank programs -------------------------------------------------------
    def _dispatch(self, ctx) -> Generator[Event, Any, None]:
        desc = np.zeros(2, dtype=np.int64)
        while True:
            while not self._queue and not self._closed:
                self._wake = self.sim.event(
                    name=f"tiles.{self.name}.wake"
                )
                yield self._wake
            if not self._queue:
                # Closed and drained: broadcast the stop sentinel.
                desc[:] = (STOP, STOP)
                yield from ctx.bcast(desc, root=0)
                return
            req = self._queue.pop(0)
            self.log.started(req)
            desc[:] = (req.req_id, req.payload)
            yield from ctx.bcast(desc, root=0)
            pixels = yield from self._render(ctx, int(req.payload))
            self.rendered[int(req.payload)] = pixels
            self.log.completed(req)

    def _serve_loop(self, ctx) -> Generator[Event, Any, None]:
        desc = np.zeros(2, dtype=np.int64)
        while True:
            yield from ctx.bcast(desc, root=0)
            strip = int(desc[1])
            if strip == STOP:
                return
            yield from self._render(ctx, strip)

    def _render(
        self, ctx, strip_id: int
    ) -> Generator[Event, Any, Optional[np.ndarray]]:
        """One request's compute + gather (every rank).

        Returns the assembled strip pixels on rank 0, ``None`` on the
        others.
        """
        cfg = self.cfg
        tile = cfg.tile
        P = ctx.size
        words = tile.width * tile.strip_height
        share = math.ceil(words / P)
        # Evenly split escape-time iterations; the simulated compute.
        secs = (
            float(self._iters[strip_id])
            * tile.flops_per_iter
            / (cfg.gflops * 1e9)
            / P
        )
        if secs > 0.0:
            yield self.sim.timeout(secs, name=f"tiles.strip{strip_id}")
        send = np.zeros(share, dtype=np.int32)
        ref = mandelbrot_reference(tile)
        r0 = strip_id * tile.strip_height
        flat = ref[r0 : r0 + tile.strip_height, :].reshape(-1)
        lo = ctx.rank * share
        chunk = flat[lo : lo + share]
        send[: len(chunk)] = chunk
        recv = [np.zeros(share, dtype=np.int32) for _ in range(P)]
        yield from ctx.allgather(send, recv)
        if ctx.rank != 0:
            return None
        return np.concatenate(recv)[:words].reshape(
            tile.strip_height, tile.width
        )

    # -- verification --------------------------------------------------------
    def verify(self) -> None:
        """Every rendered strip must match the escape-time reference."""
        ref = mandelbrot_reference(self.cfg.tile)
        h = self.cfg.tile.strip_height
        for strip_id, pixels in self.rendered.items():
            want = ref[strip_id * h : (strip_id + 1) * h, :]
            if not np.array_equal(pixels, want):
                raise AssertionError(
                    f"strip {strip_id} does not match the reference"
                )
