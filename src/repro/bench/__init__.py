"""Benchmark harness regenerating every evaluation artifact."""

from .breakdown import overhead_breakdown, send_lifecycle
from .calibration import FIG6_ANCHORS, SEC51_PAPER, TABLE1_PAPER, Table1Row
from .future import future_hw_table
from .figures import (
    fig5_mandelbrot_distribution,
    fig6_send,
    fig7_broadcast,
    sec51_cannon,
    sec51_mandelbrot,
    sec51_nbody,
    table1_barriers,
)
from .harness import Table, fmt_ratio, fmt_time, results_dir, save_table

__all__ = [
    "Table",
    "fmt_time",
    "fmt_ratio",
    "results_dir",
    "save_table",
    "TABLE1_PAPER",
    "FIG6_ANCHORS",
    "SEC51_PAPER",
    "Table1Row",
    "table1_barriers",
    "fig6_send",
    "fig7_broadcast",
    "fig5_mandelbrot_distribution",
    "sec51_mandelbrot",
    "sec51_cannon",
    "sec51_nbody",
]
