"""Benchmark harness: tables, formatting, and result persistence.

Every benchmark regenerates one of the paper's artifacts and renders it
in the same shape the paper reports (rows of a table, series of a
figure), alongside the paper's numbers for comparison.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["fmt_time", "fmt_ratio", "Table", "results_dir", "save_table"]


def fmt_time(seconds: Optional[float]) -> str:
    """Human-readable simulated time (µs/ms/s)."""
    if seconds is None:
        return "—"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.3f} ms"
    return f"{seconds:.3f} s"


def fmt_ratio(x: Optional[float]) -> str:
    if x is None:
        return "—"
    return f"{x:.2f}×"


@dataclass
class Table:
    """A paper-style results table."""

    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add(self, *cells: Any) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has "
                f"{len(self.columns)} columns"
            )
        self.rows.append([str(c) for c in cells])

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines = [self.title, "=" * len(self.title)]
        header = " | ".join(
            c.ljust(widths[i]) for i, c in enumerate(self.columns)
        )
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
            )
        for n in self.notes:
            lines.append(f"  note: {n}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.render()


def results_dir() -> str:
    """Directory where benchmark tables are persisted."""
    here = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))))
    out = os.path.join(here, "benchmarks", "out")
    os.makedirs(out, exist_ok=True)
    return out


def save_table(name: str, table: Table) -> str:
    """Persist a rendered table under benchmarks/out; returns the path."""
    path = os.path.join(results_dir(), f"{name}.txt")
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(table.render() + "\n")
    return path
