"""Data generators for every table and figure of the evaluation.

Each function runs the necessary simulations and returns a
:class:`~repro.bench.harness.Table` mirroring the paper's artifact.
They are shared by the pytest benchmarks and by EXPERIMENTS.md
regeneration.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..apps import cannon, efficiency, mandelbrot, micro, nbody, speedup
from ..hw import HWParams, build_cluster, paper_cluster
from ..hw.params import KB, MB
from ..sim.core import Simulator, us
from .calibration import FIG6_ANCHORS, SEC51_PAPER, TABLE1_PAPER
from .harness import Table, fmt_ratio, fmt_time

__all__ = [
    "table1_barriers",
    "fig6_send",
    "fig7_broadcast",
    "fig5_mandelbrot_distribution",
    "sec51_mandelbrot",
    "sec51_cannon",
    "sec51_nbody",
]

#: Default message-size sweep of Figure 6 ("one byte to sixty-four
#: megabytes" in the text; the plotted axis tops out at 1 MB).
FIG6_SIZES: Tuple[int, ...] = (0, 1 * KB, 16 * KB, 64 * KB, 256 * KB, 1 * MB)

#: Figure 7 axis: 1 kB – 512 kB.
FIG7_SIZES: Tuple[int, ...] = (1 * KB, 8 * KB, 64 * KB, 512 * KB)


def table1_barriers(iters: int = 10, seed: int = 0) -> Table:
    """Reproduce Table 1: barrier timings for every configuration."""
    t = Table(
        "Table 1 — Barrier timings (µs per barrier)",
        [
            "Nodes",
            "Config",
            "MPI (paper)",
            "MPI (ours)",
            "DCGN (paper)",
            "DCGN (ours)",
            "Ratio (paper)",
            "Ratio (ours)",
        ],
    )
    mpi_cache: Dict[Tuple[int, int], float] = {}
    for row in TABLE1_PAPER:
        total_kernels = row.cpus + row.gpus
        mpi_ours: Optional[float] = None
        if row.mpi_us is not None:
            # Equal-kernel-count MPI baseline (Table 1 footnote): spread
            # the ranks over as many nodes as the DCGN job uses... the
            # paper compares against MPI rows with that many CPUs, which
            # appear in the table with their own node counts.
            key = (total_kernels, max(1, total_kernels // 2))
            if key not in mpi_cache:
                n_nodes = max(1, total_kernels // 2)
                mpi_cache[key] = micro.mpi_barrier_time(
                    total_kernels, n_nodes, iters=iters, seed=seed
                )
            mpi_ours = mpi_cache[key]
        marks = micro.dcgn_barrier_time(
            row.nodes,
            cpu_threads=row.cpus_per_node,
            gpus=row.gpus_per_node,
            iters=iters,
            seed=seed,
        )
        dcgn_ours = marks.get("cpu", marks.get("gpu"))
        ratio_ours = (
            dcgn_ours / mpi_ours if (mpi_ours and dcgn_ours) else None
        )
        t.add(
            row.nodes,
            f"{row.cpus_per_node}C/{row.gpus_per_node}G per node",
            f"{row.mpi_us:.0f} µs" if row.mpi_us else "—",
            fmt_time(mpi_ours),
            f"{row.dcgn_us:.0f} µs",
            fmt_time(dcgn_ours),
            fmt_ratio(row.ratio),
            fmt_ratio(ratio_ours),
        )
    t.note(
        "DCGN timings measured at a CPU kernel when present, else at the "
        "last GPU slot (paper footnote: mixed rows compare against MPI "
        "with an equal total kernel count)."
    )
    return t


def fig6_send(
    sizes: Sequence[int] = FIG6_SIZES, iters: int = 5, seed: int = 0
) -> Table:
    """Reproduce Figure 6: send time vs message size, five series."""
    t = Table(
        "Figure 6 — Send timings (per one-way message)",
        [
            "Size",
            "MVAPICH2",
            "DCGN CPU:CPU",
            "DCGN CPU:GPU",
            "DCGN GPU:CPU",
            "DCGN GPU:GPU",
        ],
    )
    ratios: Dict[str, float] = {}
    for nbytes in sizes:
        t_mpi = micro.mpi_send_time(nbytes, iters=iters, seed=seed)
        t_cc = micro.dcgn_send_time(nbytes, "cpu", "cpu", iters=iters, seed=seed)
        t_cg = micro.dcgn_send_time(nbytes, "cpu", "gpu", iters=iters, seed=seed)
        t_gc = micro.dcgn_send_time(nbytes, "gpu", "cpu", iters=iters, seed=seed)
        t_gg = micro.dcgn_send_time(nbytes, "gpu", "gpu", iters=iters, seed=seed)
        label = "0 B" if nbytes == 0 else (
            f"{nbytes // MB} MB" if nbytes >= MB else f"{nbytes // KB} kB"
        )
        t.add(
            label,
            fmt_time(t_mpi),
            fmt_time(t_cc),
            fmt_time(t_cg),
            fmt_time(t_gc),
            fmt_time(t_gg),
        )
        if nbytes == 0:
            ratios["0B cpu:cpu / mpi"] = t_cc / t_mpi
            ratios["0B gpu:gpu / mpi"] = t_gg / t_mpi
        if nbytes == MB:
            ratios["1MB cpu:cpu / mpi"] = t_cc / t_mpi
            ratios["1MB gpu:gpu / mpi(cpu)"] = t_gg / t_mpi
    for key, paper_val in FIG6_ANCHORS.items():
        if key in ratios:
            t.note(
                f"{key}: paper {paper_val:g}×, measured {ratios[key]:.2f}×"
            )
    return t


def fig7_broadcast(
    sizes: Sequence[int] = FIG7_SIZES, iters: int = 5, seed: int = 0
) -> Table:
    """Reproduce Figure 7: broadcast time vs size, three series."""
    t = Table(
        "Figure 7 — Broadcast timings (8 ranks over 4 nodes)",
        ["Size", "MVAPICH2 8 CPUs", "DCGN 8 CPUs", "DCGN 8 GPUs"],
    )
    crossover_noted = False
    for nbytes in sizes:
        t_mpi = micro.mpi_bcast_time(nbytes, iters=iters, seed=seed)
        t_cpu = micro.dcgn_bcast_time(nbytes, "cpu", iters=iters, seed=seed)
        t_gpu = micro.dcgn_bcast_time(nbytes, "gpu", iters=iters, seed=seed)
        label = f"{nbytes // MB} MB" if nbytes >= MB else f"{nbytes // KB} kB"
        t.add(label, fmt_time(t_mpi), fmt_time(t_cpu), fmt_time(t_gpu))
        if not crossover_noted and t_cpu < t_mpi:
            t.note(
                f"DCGN 8-CPU beats MVAPICH2 at {label} (paper: DCGN wins "
                "small/medium sizes because its MPI bcast runs with half "
                "as many ranks + local memcpy)"
            )
            crossover_noted = True
    t.note("GPU series slower throughout: two PCIe trips per payload.")
    return t


def fig5_mandelbrot_distribution(
    seeds: Sequence[int] = (1, 2),
    jitter_us: float = 8.0,
) -> Table:
    """Reproduce Figure 5: run-to-run strip ownership variation."""
    cfg = mandelbrot.MandelbrotConfig(
        width=256, height=256, strip_height=8, max_iter=256
    )
    params = HWParams(jitter_us=jitter_us)
    owner_maps: List[np.ndarray] = []
    for seed in seeds:
        sim = Simulator()
        cluster = build_cluster(
            sim, paper_cluster(nodes=4, params=params, seed=seed)
        )
        res = mandelbrot.run_dcgn(cluster, cfg)
        owner_maps.append(res.extras["owners"])
    t = Table(
        "Figure 5 — Mandelbrot strip ownership across runs "
        f"({cfg.n_strips} strips, 8 GPU workers)",
        ["Strip"] + [f"run (seed {s})" for s in seeds],
    )
    for i in range(cfg.n_strips):
        t.add(i, *[int(m[i]) for m in owner_maps])
    diff = int(np.sum(owner_maps[0] != owner_maps[1]))
    t.note(
        f"{diff}/{cfg.n_strips} strips changed owner between runs — the "
        "dynamic work queue reacts to device/network timing (paper: 'two "
        "separate runs ... produce a different work distribution')."
    )
    return t


def sec51_mandelbrot(seed: int = 0) -> Table:
    """§5.1 Mandelbrot: speedup/efficiency/Mpixels per second."""
    cfg = mandelbrot.MandelbrotConfig()
    paper = SEC51_PAPER["mandelbrot"]

    sim = Simulator()
    single = mandelbrot.run_single_gpu(
        build_cluster(sim, paper_cluster(nodes=1, gpus_per_node=1, seed=seed)),
        cfg,
    )
    sim = Simulator()
    gas = mandelbrot.run_gas(
        build_cluster(sim, paper_cluster(nodes=4, seed=seed)), cfg
    )
    sim = Simulator()
    dcgn = mandelbrot.run_dcgn(
        build_cluster(sim, paper_cluster(nodes=4, seed=seed)), cfg
    )
    t = Table(
        "§5.1 Mandelbrot (8 GPUs; single-GPU baseline)",
        ["Metric", "Paper GAS", "Ours GAS", "Paper DCGN", "Ours DCGN"],
    )
    sp_gas = speedup(single.elapsed, gas.elapsed)
    sp_dcgn = speedup(single.elapsed, dcgn.elapsed)
    t.add(
        "speedup (8 GPUs)",
        f"{paper['gas_speedup_8gpu']:.2f}×",
        f"{sp_gas:.2f}×",
        f"{paper['dcgn_speedup_8gpu']:.2f}×",
        f"{sp_dcgn:.2f}×",
    )
    t.add(
        "efficiency",
        f"{paper['gas_efficiency']:.0%}",
        f"{sp_gas / 8:.0%}",
        f"{paper['dcgn_efficiency']:.0%}",
        f"{sp_dcgn / 8:.0%}",
    )
    t.add(
        "Mpixels/s",
        f"{paper['gas_mpix_s']:.0f}",
        f"{gas.extras['pixels_per_s'] / 1e6:.1f}",
        f"{paper['dcgn_mpix_s']:.0f}",
        f"{dcgn.extras['pixels_per_s'] / 1e6:.1f}",
    )
    t.add(
        "DCGN/GAS throughput",
        "—",
        "—",
        f"{paper['dcgn_mpix_s'] / paper['gas_mpix_s']:.2f}",
        f"{dcgn.extras['pixels_per_s'] / gas.extras['pixels_per_s']:.2f}",
    )
    t.note(
        "Absolute Mpixels/s differ (simulated device, calibrated "
        "arithmetic intensity); who-wins and the DCGN/GAS gap are the "
        "reproduction targets."
    )
    return t


def sec51_cannon(seed: int = 0) -> Table:
    """§5.1 Cannon's matrix multiplication: 1024², 4 GPUs."""
    cfg = cannon.CannonConfig(n=1024, grid=2)
    paper = SEC51_PAPER["cannon"]
    sim = Simulator()
    single = cannon.run_single_gpu(
        build_cluster(sim, paper_cluster(nodes=1, gpus_per_node=1, seed=seed)),
        cfg,
    )
    sim = Simulator()
    gas = cannon.run_gas(
        build_cluster(sim, paper_cluster(nodes=2, seed=seed)), cfg
    )
    sim = Simulator()
    dcgn = cannon.run_dcgn(
        build_cluster(sim, paper_cluster(nodes=2, seed=seed)), cfg
    )
    t = Table(
        "§5.1 Cannon matrix multiply (1024×1024, 4 GPUs)",
        ["Metric", "Paper", "Ours"],
    )
    eff_gas = efficiency(single.elapsed, gas.elapsed, 4)
    eff_dcgn = efficiency(single.elapsed, dcgn.elapsed, 4)
    t.add("GAS efficiency", f"{paper['gas_efficiency']:.0%}", f"{eff_gas:.0%}")
    t.add(
        "DCGN efficiency", f"{paper['dcgn_efficiency']:.0%}", f"{eff_dcgn:.0%}"
    )
    t.add(
        "DCGN/GAS",
        f"{paper['dcgn_efficiency'] / paper['gas_efficiency']:.2f}",
        f"{eff_dcgn / eff_gas:.2f}",
    )
    return t


def sec51_nbody(
    body_counts: Sequence[int] = (4096, 16384, 32768),
    steps: int = 3,
    seed: int = 0,
) -> Table:
    """§5.1 N-body efficiency curve (8 GPUs)."""
    paper = SEC51_PAPER["nbody"]
    paper_eff = {4096: paper["eff_4k"], 16384: paper["eff_16k"],
                 32768: paper["eff_32k"]}
    t = Table(
        "§5.1 N-body efficiency (8 GPUs, brute force)",
        ["Bodies", "Paper eff.", "GAS eff.", "DCGN eff.", "DCGN/GAS"],
    )
    for n in body_counts:
        cfg = nbody.NBodyConfig(n_bodies=n, steps=steps, verify=False)
        sim = Simulator()
        single = nbody.run_single_gpu(
            build_cluster(
                sim, paper_cluster(nodes=1, gpus_per_node=1, seed=seed)
            ),
            cfg,
        )
        sim = Simulator()
        gas = nbody.run_gas(
            build_cluster(sim, paper_cluster(nodes=4, seed=seed)), cfg
        )
        sim = Simulator()
        dcgn = nbody.run_dcgn(
            build_cluster(sim, paper_cluster(nodes=4, seed=seed)), cfg
        )
        eff_gas = efficiency(single.elapsed, gas.elapsed, gas.units)
        eff_dcgn = efficiency(single.elapsed, dcgn.elapsed, dcgn.units)
        paper_e = paper_eff.get(n)
        t.add(
            n,
            f"{paper_e:.0%}" if paper_e else "—",
            f"{eff_gas:.0%}",
            f"{eff_dcgn:.0%}",
            f"{eff_dcgn / eff_gas:.2f}",
        )
    t.note(
        "Paper: 'Both the DCGN and GAS implementations yielded the same "
        "efficiency' — computation dominates communication as N grows."
    )
    return t
