"""Future-hardware projection (paper §5.2 "Looking Forward" and §7).

"Several things are necessary: A method for signaling the CPU from the
GPU, a direct connection to the NIC, a direct GPU-to-GPU connection via
PCI-e, and buffers in system memory so the GPU may push data.  We
believe these additions would put DCGN on par with MPI while preserving
its advantage of a higher-level, more flexible interface."

This module tests that prediction inside the model: it re-runs the
Figure-6 GPU:GPU send with the two future-hardware switches enabled and
reports how far the gap to MPI closes.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from ..apps import micro
from ..hw.params import HWParams
from .harness import Table, fmt_time

__all__ = ["future_hw_table"]


def _params(signaling: bool, direct: bool) -> HWParams:
    base = HWParams()
    return base.with_(
        dcgn=dataclasses.replace(
            base.dcgn,
            future_gpu_signaling=signaling,
            future_gpu_direct=direct,
        )
    )


def future_hw_table(seed: int = 0) -> Table:
    """GPU:GPU send latency under the paper's predicted hardware."""
    t = Table(
        "Future hardware — GPU:GPU sends vs MPI (paper §7 prediction)",
        ["Configuration", "0 B", "64 kB", "1 MB", "0 B vs MPI"],
    )
    sizes = (0, 64 * 1024, 1 << 20)
    mpi = [micro.mpi_send_time(n, iters=4, seed=seed) for n in sizes]
    t.add(
        "MVAPICH2 (CPU:CPU)",
        *[fmt_time(x) for x in mpi],
        "1.00×",
    )
    rows = [
        ("DCGN 2009 (polling + host bounce)", False, False),
        ("+ GPU signals CPU", True, False),
        ("+ direct NIC path", False, True),
        ("+ both (the paper's §7 world)", True, True),
    ]
    for label, sig, direct in rows:
        params = _params(sig, direct)
        times = [
            micro.dcgn_send_time(
                n, "gpu", "gpu", iters=4, params=params, seed=seed
            )
            for n in sizes
        ]
        t.add(
            label,
            *[fmt_time(x) for x in times],
            f"{times[0] / mpi[0]:.1f}×",
        )
    t.note(
        "With signaling + a direct NIC path the 0-byte multiplier falls "
        "from hundreds to tens — 'on par with MPI' relative to the "
        "polling architecture, exactly the trajectory NVSHMEM/GPUDirect "
        "later followed."
    )
    return t
