"""Overhead-breakdown artifact: *where* DCGN's microseconds go.

The paper's abstract promises to "indicate the locations where this
overhead accumulates" and §5.2 narrates it ("Three separate
communications with the source GPU must take place...").  This module
instruments a single 0-byte send end-to-end and renders the waterfall
for the CPU:CPU and GPU:GPU paths.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..dcgn import DcgnConfig, DcgnRuntime, NodeConfig
from ..dcgn.requests import CommRequest
from ..hw import build_cluster, paper_cluster
from ..hw.params import HWParams
from ..sim.core import Simulator, us
from .harness import Table

__all__ = ["overhead_breakdown", "send_lifecycle"]


def send_lifecycle(
    kind: str = "cpu",
    nbytes: int = 0,
    params: Optional[HWParams] = None,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """Run one DCGN send+recv pair and return per-request stage marks.

    ``kind`` ∈ {"cpu", "gpu"}: both endpoints of the given kind, on two
    different nodes.  Returns ``{"send": marks, "recv": marks}`` with
    stage timestamps in seconds.
    """
    sim = Simulator()
    cluster = build_cluster(
        sim, paper_cluster(nodes=2, params=params, seed=seed)
    )
    if kind == "cpu":
        cfg = DcgnConfig.homogeneous(2, cpu_threads=1)
    else:
        cfg = DcgnConfig.homogeneous(2, gpus=1, slots_per_gpu=1)
    rt = DcgnRuntime(cluster, cfg)
    for ct in rt.comm_threads:
        ct.captured = []

    if kind == "cpu":

        def kernel(ctx):
            buf = np.zeros(max(nbytes, 1), dtype=np.uint8)
            if ctx.rank == 0:
                yield from ctx.send(1, buf, nbytes=nbytes)
            else:
                yield from ctx.recv(0, buf, nbytes=nbytes)

        rt.launch_cpu(kernel)
    else:

        def gpu_kernel(kctx):
            comm = kctx.comm
            dbuf = kctx.device.alloc(max(nbytes, 1), dtype=np.uint8)
            me = comm.rank(0)
            if me == 0:
                yield from comm.send(0, 1, dbuf, nbytes=nbytes)
            else:
                yield from comm.recv(0, 0, dbuf, nbytes=nbytes)
            dbuf.free()

        rt.launch_gpu(gpu_kernel)
    rt.run(max_time=10.0)
    captured: List[CommRequest] = []
    for ct in rt.comm_threads:
        captured.extend(ct.captured or [])
    out: Dict[str, Dict[str, float]] = {}
    for req in captured:
        if req.op in ("send", "recv"):
            out[req.op] = dict(req.marks)
    return out


def _stage_rows(marks: Dict[str, float], order: List[Tuple[str, str, str]]):
    rows = []
    for start, end, label in order:
        if start in marks and end in marks:
            rows.append((label, (marks[end] - marks[start]) / us(1.0)))
    return rows


def overhead_breakdown(seed: int = 0) -> Table:
    """The waterfall table for 0-byte CPU:CPU and GPU:GPU sends."""
    cpu = send_lifecycle("cpu", seed=seed)
    gpu = send_lifecycle("gpu", seed=seed)
    t = Table(
        "Overhead breakdown — one 0-byte DCGN send (per stage, µs)",
        ["Path", "Stage", "Time (µs)"],
    )
    cpu_send = cpu.get("send", {})
    for label, dt in _stage_rows(
        cpu_send,
        [
            ("issued", "enqueued", "request bookkeeping + queue push"),
            ("enqueued", "picked", "comm-thread sleep-poll wait"),
            ("picked", "completed", "matching + MPI send"),
            ("completed", "returned", "completion sleep-poll notice"),
        ],
    ):
        t.add("CPU send", label, f"{dt:.1f}")
    if "issued" in cpu_send and "returned" in cpu_send:
        t.add(
            "CPU send",
            "TOTAL",
            f"{(cpu_send['returned'] - cpu_send['issued']) / us(1.0):.1f}",
        )
    gpu_send = gpu.get("send", {})
    for label, dt in _stage_rows(
        gpu_send,
        [
            ("posted", "harvested", "mailbox poll wait (PCIe probe cadence)"),
            ("harvested", "enqueued", "descriptor+payload PCIe read, relay"),
            ("enqueued", "picked", "comm-thread sleep-poll wait"),
            ("picked", "completed", "matching + MPI send"),
            ("completed", "written_back", "completion signal + PCIe flag write"),
        ],
    ):
        t.add("GPU send", label, f"{dt:.1f}")
    if "posted" in gpu_send and "written_back" in gpu_send:
        t.add(
            "GPU send",
            "TOTAL",
            f"{(gpu_send['written_back'] - gpu_send['posted']) / us(1.0):.1f}",
        )
    t.note(
        "Paper §5.2: the CPU path pays thread-safe queueing; the GPU path "
        "adds the three PCIe conversations (notice request, fetch it, flag "
        "completion).  These stages are exactly where the 28x and 564x "
        "small-message multipliers accumulate."
    )
    return t
