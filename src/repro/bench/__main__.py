"""Regenerate every evaluation artifact from the command line.

Usage::

    python -m repro.bench              # everything (several minutes)
    python -m repro.bench table1 fig6  # selected artifacts

Tables are printed and saved under ``benchmarks/out/``.
"""

from __future__ import annotations

import argparse
import sys
import time

from . import (
    fig5_mandelbrot_distribution,
    fig6_send,
    fig7_broadcast,
    future_hw_table,
    overhead_breakdown,
    sec51_cannon,
    sec51_mandelbrot,
    sec51_nbody,
    table1_barriers,
)
from .harness import save_table

ARTIFACTS = {
    "table1": ("Table 1 (barriers)", table1_barriers),
    "fig5": ("Figure 5 (Mandelbrot distribution)",
             fig5_mandelbrot_distribution),
    "fig6": ("Figure 6 (sends)", fig6_send),
    "fig7": ("Figure 7 (broadcasts)", fig7_broadcast),
    "mandelbrot": ("§5.1 Mandelbrot", sec51_mandelbrot),
    "cannon": ("§5.1 Cannon", sec51_cannon),
    "nbody": ("§5.1 N-body", sec51_nbody),
    "breakdown": ("Overhead breakdown", overhead_breakdown),
    "future": ("Future hardware (§7)", future_hw_table),
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's evaluation artifacts.",
    )
    parser.add_argument(
        "artifacts",
        nargs="*",
        help=f"which artifacts to regenerate: {', '.join(ARTIFACTS)}, "
        "or 'all' (default)",
    )
    args = parser.parse_args(argv)
    unknown = [a for a in args.artifacts if a != "all" and a not in ARTIFACTS]
    if unknown:
        parser.error(
            f"unknown artifact(s): {', '.join(unknown)} "
            f"(choose from {', '.join(ARTIFACTS)}, all)"
        )
    wanted = (
        list(ARTIFACTS)
        if "all" in args.artifacts or not args.artifacts
        else args.artifacts
    )
    for key in wanted:
        label, builder = ARTIFACTS[key]
        print(f"\n--- {label} ---")
        t0 = time.time()
        table = builder()
        print(table.render())
        path = save_table(key, table)
        print(f"  [saved to {path}; {time.time() - t0:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
