"""Paper-reported numbers, as structured data (the calibration targets).

Each artifact of the evaluation section is encoded here so benchmarks
can print paper-vs-measured side by side and EXPERIMENTS.md can be
regenerated mechanically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = [
    "TABLE1_PAPER",
    "FIG6_ANCHORS",
    "SEC51_PAPER",
    "Table1Row",
]


@dataclass(frozen=True)
class Table1Row:
    """One row of the paper's Table 1 (barrier timings)."""

    nodes: int
    cpus: int  #: total CPU kernels in the job
    gpus: int  #: total GPU kernels in the job
    mpi_us: Optional[float]  #: MVAPICH2 with equal kernel count
    dcgn_us: float
    ratio: Optional[float]

    @property
    def cpus_per_node(self) -> int:
        return self.cpus // self.nodes

    @property
    def gpus_per_node(self) -> int:
        return self.gpus // self.nodes


#: Paper Table 1.  The MPI baseline compares against an MPI job whose
#: rank count equals the DCGN job's *total kernel count* (footnote).
TABLE1_PAPER: List[Table1Row] = [
    Table1Row(1, 2, 0, 3.0, 38.0, 12.67),
    Table1Row(1, 0, 2, 3.0, 313.0, 104.3),
    Table1Row(1, 1, 1, 3.0, 50.0, 16.67),
    Table1Row(1, 2, 2, 5.0, 53.0, 10.60),
    Table1Row(2, 4, 0, 5.0, 41.0, 8.20),
    Table1Row(2, 0, 4, 5.0, 747.0, 149.40),
    Table1Row(2, 4, 4, 6.0, 55.0, 9.17),
    Table1Row(4, 8, 0, 6.0, 43.0, 7.17),
    Table1Row(4, 0, 8, 6.0, 806.0, 134.33),
    Table1Row(4, 8, 8, None, 70.0, None),
]

#: Paper §5.2 send anchors: (description, paper ratio vs MVAPICH2).
FIG6_ANCHORS: Dict[str, float] = {
    "0B cpu:cpu / mpi": 28.0,
    "0B gpu:gpu / mpi": 564.0,
    "1MB cpu:cpu / mpi": 1.04,
    "1MB gpu:gpu / mpi(cpu)": 1.5,
}

#: Paper §5.1 application results.
SEC51_PAPER: Dict[str, Dict[str, float]] = {
    "mandelbrot": {
        "gas_mpix_s": 17.0,
        "dcgn_mpix_s": 15.0,
        "gas_speedup_8gpu": 3.08,
        "dcgn_speedup_8gpu": 2.72,
        "gas_efficiency": 0.38,
        "dcgn_efficiency": 0.34,
    },
    "cannon": {
        "n": 1024,
        "gpus": 4,
        "dcgn_efficiency": 0.71,
        "gas_efficiency": 0.74,
    },
    "nbody": {
        "gpus": 8,
        "eff_4k": 0.28,
        "eff_16k": 0.64,
        "eff_32k": 0.90,
    },
}
