"""Exception types for the schedule-exploration model checker."""

from __future__ import annotations

__all__ = ["InvariantViolation"]


class InvariantViolation(AssertionError):
    """A scenario's end-state invariant does not hold.

    Raised by scenario code after a schedule completed without deadlock
    or crash, but left the simulated state wrong (a lost update under a
    lock, a value that never landed, an error that should have been
    raised and wasn't).  The sweep runner classifies it separately from
    crashes: a crash is the runtime detecting its own misuse, an
    invariant violation is the checker catching silent corruption.
    """
