"""Schedule-exploration model checking for the concurrent runtime.

Public surface::

    from repro.check import sweep, replay, SCENARIOS

    report = sweep(200)            # all scenarios x 200 seeds
    assert report.ok, report.table()

    result = replay("lock-writers", seed=17)   # one seed, full trace

CLI: ``python -m repro.check --sweep 200`` (see ``--help``).

The pieces:

* :mod:`repro.check.scenarios` — adversarial concurrent programs over
  the real MPI/DCGN/RMA stack, each with an end-state invariant;
* :mod:`repro.check.runner` — executes scenarios across seeds on
  :class:`~repro.sim.ExploringSimulator` and classifies every schedule
  as ok / deadlock / livelock / crash / invariant-violation;
* :mod:`repro.check.buggy` — a deliberately wrong lock-order-inversion
  fixture the sweep must *catch* (checker-has-teeth proof).
"""

from .buggy import BuggyGrantQueue
from .errors import InvariantViolation
from .runner import (
    DEFAULT_LIVELOCK_WINDOW,
    OUTCOMES,
    ScenarioReport,
    ScheduleResult,
    SweepReport,
    replay,
    run_one,
    sweep,
)
from .scenarios import SCENARIOS, ScenarioSpec, get_scenario, scenario_names

__all__ = [
    "BuggyGrantQueue",
    "InvariantViolation",
    "OUTCOMES",
    "DEFAULT_LIVELOCK_WINDOW",
    "ScheduleResult",
    "ScenarioReport",
    "SweepReport",
    "run_one",
    "replay",
    "sweep",
    "SCENARIOS",
    "ScenarioSpec",
    "get_scenario",
    "scenario_names",
]
