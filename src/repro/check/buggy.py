"""A deliberately buggy fixture the sweep must catch.

This module exists to prove the model checker has teeth: a checker that
only ever reports "ok" is indistinguishable from one that checks
nothing.  :class:`BuggyGrantQueue` is a **test-only** miniature of the
RMA passive-target grant queue, protected by two mutexes — and its two
code paths take them in *opposite* order, the classic lock-order
inversion:

* :meth:`enqueue` takes ``queue lock -> state lock``;
* :meth:`grant` takes ``state lock -> queue lock``  (the bug).

Both processes start at the same simulated instant, so essentially
every legal schedule lets each side grab its first lock before the
other grabs its second — and the run deadlocks.  The sweep must
classify that deadlock (with the waits-for chain naming both mutexes)
and replaying the reported seed must reproduce it — which is exactly
what the ``buggy-grant-queue`` scenario requires.

Nothing in the production runtime uses this class.
"""

from __future__ import annotations

from typing import Any, Generator

from ..sim.core import Event, Simulator
from ..sim.resources import Mutex

__all__ = ["BuggyGrantQueue"]


class BuggyGrantQueue:
    """Test-only grant queue with a lock-order inversion (see module doc)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._queue_lock = Mutex(sim, name="grantq.queue_lock")
        self._state_lock = Mutex(sim, name="grantq.state_lock")
        self.pending = 0
        self.granted = 0

    def _pause(self) -> Event:
        """A zero-delay scheduling point inside the critical sections —
        the moment a real implementation would be preempted."""
        return self.sim.timeout(0.0)

    def enqueue(self) -> Generator[Event, Any, None]:
        """Add a lock request: queue lock, then state lock."""
        yield self._queue_lock.request()
        yield self._pause()
        yield self._state_lock.request()
        self.pending += 1
        yield self._pause()
        self._state_lock.release()
        self._queue_lock.release()

    def grant(self) -> Generator[Event, Any, None]:
        """Grant a request: state lock, then queue lock — the INVERTED
        order.  Deadlocks against a concurrent :meth:`enqueue` whenever
        each side holds its first lock."""
        yield self._state_lock.request()
        yield self._pause()
        yield self._queue_lock.request()
        if self.pending > 0:
            self.pending -= 1
            self.granted += 1
        yield self._pause()
        self._queue_lock.release()
        self._state_lock.release()
