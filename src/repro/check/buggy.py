"""Deliberately buggy fixtures the sweep must catch.

This module exists to prove the model checker has teeth: a checker that
only ever reports "ok" is indistinguishable from one that checks
nothing.  :class:`BuggyGrantQueue` is a **test-only** miniature of the
RMA passive-target grant queue, protected by two mutexes — and its two
code paths take them in *opposite* order, the classic lock-order
inversion:

* :meth:`enqueue` takes ``queue lock -> state lock``;
* :meth:`grant` takes ``state lock -> queue lock``  (the bug).

Both processes start at the same simulated instant, so essentially
every legal schedule lets each side grab its first lock before the
other grabs its second — and the run deadlocks.  The sweep must
classify that deadlock (with the waits-for chain naming both mutexes)
and replaying the reported seed must reproduce it — which is exactly
what the ``buggy-grant-queue`` scenario requires.

:class:`BuggyReservingScheduler` plays the same role for the serving
scheduler: it re-introduces the TOCTOU window the real
:meth:`~repro.serve.scheduler.ClusterScheduler._start_placement`
deliberately avoids.  The real scheduler selects nodes and reserves
them *atomically* — no scheduling point in between.  The buggy variant
defers selection into the placement process, with a zero-delay pause
between reading the free set and marking ownership; a second job
admitted inside that window reads the *stale* free set and both jobs
reserve the same nodes — a classic double allocation.  Whether the
window is hit depends on the same-instant tie-break, so only a seed
sweep catches it reliably (the ``buggy-double-alloc`` scenario).

Nothing in the production runtime uses these classes.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from ..serve.placement import select_nodes
from ..serve.scheduler import PLACING, ClusterScheduler, Job
from ..sim.core import Event, Simulator
from ..sim.resources import Mutex

__all__ = ["BuggyGrantQueue", "BuggyReservingScheduler"]


class BuggyGrantQueue:
    """Test-only grant queue with a lock-order inversion (see module doc)."""

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._queue_lock = Mutex(sim, name="grantq.queue_lock")
        self._state_lock = Mutex(sim, name="grantq.state_lock")
        self.pending = 0
        self.granted = 0

    def _pause(self) -> Event:
        """A zero-delay scheduling point inside the critical sections —
        the moment a real implementation would be preempted."""
        return self.sim.timeout(0.0)

    def enqueue(self) -> Generator[Event, Any, None]:
        """Add a lock request: queue lock, then state lock."""
        yield self._queue_lock.request()
        yield self._pause()
        yield self._state_lock.request()
        self.pending += 1
        yield self._pause()
        self._state_lock.release()
        self._queue_lock.release()

    def grant(self) -> Generator[Event, Any, None]:
        """Grant a request: state lock, then queue lock — the INVERTED
        order.  Deadlocks against a concurrent :meth:`enqueue` whenever
        each side holds its first lock."""
        yield self._state_lock.request()
        yield self._pause()
        yield self._queue_lock.request()
        if self.pending > 0:
            self.pending -= 1
            self.granted += 1
        yield self._pause()
        self._queue_lock.release()
        self._state_lock.release()


class BuggyReservingScheduler(ClusterScheduler):
    """Test-only scheduler with a select/reserve TOCTOU window (see
    module doc).  Records every job's node-ownership interval in
    ``history`` so a scenario can detect double allocation post hoc;
    the inherited release-conflict guard is disabled for the same
    reason (the fixture must *misbehave*, not crash)."""

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: (job id, nodes, reserve time, release time or None).
        self.history: List[Tuple[int, tuple, float, Any]] = []
        self._hist_index = {}

    def _start_placement(self, job: Job) -> None:
        # BUG under test: selection is deferred into the placement
        # process instead of happening atomically with reservation.
        job.state = PLACING
        job.place_t = self.sim.now
        self.sim.process(
            self._select_then_place(job),
            name=f"serve.place.{job.name}",
        )

    def _select_then_place(self, job: Job) -> Generator[Event, Any, None]:
        nodes = select_nodes(
            self.policy,
            self.topology,
            self.free_nodes(),
            job.spec.n_nodes,
            self._rng,
        )
        # The TOCTOU window: another admission can run here and read
        # the free set this selection was based on.
        yield self.sim.timeout(0.0, name=f"serve.toctou.{job.name}")
        for n in nodes:
            self._owner[n] = job.id  # no conflict check — the bug
        job.nodes = nodes
        self._hist_index[job.id] = len(self.history)
        self.history.append((job.id, tuple(nodes), self.sim.now, None))
        yield from self._place(job)

    def _release_nodes(self, job: Job) -> None:
        assert job.nodes is not None
        for n in job.nodes:
            if self._owner[n] == job.id:
                self._owner[n] = None
        i = self._hist_index[job.id]
        jid, nodes, t0, _ = self.history[i]
        self.history[i] = (jid, nodes, t0, self.sim.now)

    def overlaps(self) -> List[Tuple[int, int, int]]:
        """(job a, job b, shared node) triples whose ownership
        intervals genuinely overlapped — the double allocations."""
        out = []
        for i, (ja, na, a0, a1) in enumerate(self.history):
            for jb, nb, b0, b1 in self.history[i + 1:]:
                shared = set(na) & set(nb)
                if not shared:
                    continue
                a_end = a1 if a1 is not None else float("inf")
                b_end = b1 if b1 is not None else float("inf")
                if a0 < b_end and b0 < a_end:
                    out.append((ja, jb, min(shared)))
        return out
