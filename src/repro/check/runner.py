"""Sweep runner: execute scenarios across seeds and classify schedules.

One *schedule* is one scenario executed on an
:class:`~repro.sim.ExploringSimulator` with one seed; the seed fully
determines the interleaving, so any result reproduces with
``replay(scenario, seed)`` (or ``python -m repro.check --scenario NAME
--replay SEED``).  Outcomes:

``ok``
    ran to completion, invariants hold.
``deadlock``
    the event heap drained with processes blocked
    (:class:`~repro.sim.errors.DeadlockError`; the waits-for chains are
    in the result detail).
``livelock``
    no simulated-time progress over ``livelock_window`` consecutive
    events (:class:`~repro.sim.errors.LivelockError`).
``crash``
    any other exception out of the runtime.
``invariant-violation``
    the schedule completed but the end state is wrong
    (:class:`~repro.check.errors.InvariantViolation` / assertion).

A scenario *passes* a sweep when every seed's outcome is in its
``expect`` set and, for fixtures with ``must_find`` (the deliberately
buggy ones), the required outcome was observed at least once — a sweep
that cannot catch the known-buggy fixture fails, proving the checker's
teeth are real.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

from ..sim.errors import DeadlockError, LivelockError
from ..sim.explore import ExploringSimulator, ScheduleChoice
from .errors import InvariantViolation
from .scenarios import SCENARIOS, ScenarioSpec, get_scenario

__all__ = [
    "OUTCOMES",
    "DEFAULT_LIVELOCK_WINDOW",
    "ScheduleResult",
    "ScenarioReport",
    "SweepReport",
    "run_one",
    "replay",
    "sweep",
]

#: Classification buckets, display-ordered.
OUTCOMES = ("ok", "deadlock", "livelock", "crash", "invariant-violation")

#: Consecutive same-instant events before a schedule counts as livelocked.
#: Generous: a legitimate wide barrier fires hundreds of same-time
#: events, a spin loop fires them forever.
DEFAULT_LIVELOCK_WINDOW = 5_000


@dataclass
class ScheduleResult:
    """Outcome of one (scenario, seed) schedule."""

    scenario: str
    seed: int
    outcome: str
    detail: str = ""
    final_time: float = 0.0
    steps: int = 0
    decisions: int = 0
    #: Captured schedule trace (only when requested; replay fills it).
    trace: Optional[List[ScheduleChoice]] = None

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "scenario": self.scenario,
            "seed": self.seed,
            "outcome": self.outcome,
            "detail": self.detail,
            "final_time": self.final_time,
            "steps": self.steps,
            "decisions": self.decisions,
        }
        if self.trace is not None:
            d["trace"] = [
                {
                    "time": c.time,
                    "priority": c.priority,
                    "ready": list(c.ready),
                    "picked": c.picked,
                }
                for c in self.trace
            ]
        return d


def run_one(
    spec: ScenarioSpec,
    seed: int,
    livelock_window: Optional[int] = DEFAULT_LIVELOCK_WINDOW,
    capture_trace: bool = False,
) -> ScheduleResult:
    """Execute one schedule and classify it (never raises for the
    outcomes it classifies — programming errors in the runner itself
    still propagate)."""
    sim = ExploringSimulator(
        seed=seed,
        livelock_window=livelock_window,
        capture_trace=capture_trace,
    )
    outcome, detail = "ok", ""
    try:
        spec.run(sim)
    except DeadlockError as exc:
        outcome, detail = "deadlock", str(exc)
    except LivelockError as exc:
        outcome, detail = "livelock", str(exc)
    except InvariantViolation as exc:
        outcome, detail = "invariant-violation", str(exc)
    except AssertionError as exc:
        outcome, detail = "invariant-violation", f"assertion: {exc}"
    except Exception as exc:  # noqa: BLE001 - classification is the point
        outcome, detail = "crash", f"{type(exc).__name__}: {exc}"
    return ScheduleResult(
        scenario=spec.name,
        seed=seed,
        outcome=outcome,
        detail=detail,
        final_time=sim.now,
        steps=sim.steps,
        decisions=sim.decisions,
        trace=list(sim.schedule_trace) if capture_trace else None,
    )


def replay(
    name: str,
    seed: int,
    livelock_window: Optional[int] = DEFAULT_LIVELOCK_WINDOW,
) -> ScheduleResult:
    """Re-run one reported (scenario, seed) with trace capture on.

    The seed is the schedule: the replay follows the identical
    interleaving the sweep saw, with the full decision trace attached.
    """
    return run_one(
        get_scenario(name),
        seed,
        livelock_window=livelock_window,
        capture_trace=True,
    )


@dataclass
class ScenarioReport:
    """Aggregated sweep outcome of one scenario."""

    name: str
    doc: str
    expect: List[str]
    must_find: Optional[str]
    counts: Dict[str, int] = field(
        default_factory=lambda: {o: 0 for o in OUTCOMES}
    )
    #: First seed whose outcome fell outside ``expect``.
    first_unexpected: Optional[ScheduleResult] = None
    #: First seed at which ``must_find`` was observed.
    found_seed: Optional[int] = None
    total_steps: int = 0
    total_decisions: int = 0

    @property
    def passed(self) -> bool:
        if self.first_unexpected is not None:
            return False
        if self.must_find is not None and self.found_seed is None:
            return False
        return True

    def record(self, result: ScheduleResult, expect: frozenset) -> None:
        self.counts[result.outcome] += 1
        self.total_steps += result.steps
        self.total_decisions += result.decisions
        if result.outcome not in expect and self.first_unexpected is None:
            self.first_unexpected = result
        if (
            self.must_find is not None
            and result.outcome == self.must_find
            and self.found_seed is None
        ):
            self.found_seed = result.seed

    def to_dict(self) -> Dict[str, Any]:
        d: Dict[str, Any] = {
            "doc": self.doc,
            "expect": self.expect,
            "must_find": self.must_find,
            "counts": dict(self.counts),
            "passed": self.passed,
            "found_seed": self.found_seed,
            "total_steps": self.total_steps,
            "total_decisions": self.total_decisions,
        }
        if self.first_unexpected is not None:
            d["first_unexpected"] = self.first_unexpected.to_dict()
        return d


@dataclass
class SweepReport:
    """The classification table of a whole sweep."""

    n_seeds: int
    base_seed: int
    livelock_window: Optional[int]
    scenarios: Dict[str, ScenarioReport] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return all(r.passed for r in self.scenarios.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n_seeds": self.n_seeds,
            "base_seed": self.base_seed,
            "livelock_window": self.livelock_window,
            "ok": self.ok,
            "scenarios": {
                name: rep.to_dict() for name, rep in self.scenarios.items()
            },
        }

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    def table(self) -> str:
        """The human-readable classification table."""
        header = (
            f"{'scenario':<26} {'ok':>5} {'dead':>5} {'live':>5} "
            f"{'crash':>5} {'inv':>5}  verdict"
        )
        lines = [header, "-" * len(header)]
        for name, rep in self.scenarios.items():
            c = rep.counts
            verdict = "pass" if rep.passed else "FAIL"
            note = ""
            if rep.must_find is not None:
                if rep.found_seed is not None:
                    note = f" ({rep.must_find} found @ seed {rep.found_seed})"
                else:
                    note = f" ({rep.must_find} NOT found)"
            elif rep.first_unexpected is not None:
                fu = rep.first_unexpected
                note = f" ({fu.outcome} @ seed {fu.seed})"
            lines.append(
                f"{name:<26} {c['ok']:>5} {c['deadlock']:>5} "
                f"{c['livelock']:>5} {c['crash']:>5} "
                f"{c['invariant-violation']:>5}  {verdict}{note}"
            )
        return "\n".join(lines)


def sweep(
    n_seeds: int,
    names: Optional[Sequence[str]] = None,
    base_seed: int = 0,
    livelock_window: Optional[int] = DEFAULT_LIVELOCK_WINDOW,
    progress: Optional[Any] = None,
) -> SweepReport:
    """Run every named scenario across ``n_seeds`` consecutive seeds.

    ``progress`` (when given) is called as ``progress(scenario_name,
    seeds_done, n_seeds)`` after each schedule — the CLI uses it for a
    live line, tests leave it None.
    """
    specs: Iterable[ScenarioSpec] = (
        [get_scenario(n) for n in names]
        if names is not None
        else list(SCENARIOS.values())
    )
    report = SweepReport(
        n_seeds=n_seeds,
        base_seed=base_seed,
        livelock_window=livelock_window,
    )
    for spec in specs:
        rep = ScenarioReport(
            name=spec.name,
            doc=spec.doc,
            expect=sorted(spec.expect),
            must_find=spec.must_find,
        )
        for i in range(n_seeds):
            result = run_one(
                spec, base_seed + i, livelock_window=livelock_window
            )
            rep.record(result, spec.expect)
            if progress is not None:
                progress(spec.name, i + 1, n_seeds)
        report.scenarios[spec.name] = rep
    return report
