"""Adversarial interleaving scenarios over the real MPI/DCGN/RMA stack.

Each scenario is a self-contained concurrent program exercising one of
the hand-rolled synchronization paths PRs 3-5 added to the runtime —
passive-target lock grant queues, PSCW partial-group sync, fence
epochs, split-during-collective sequencing, ``Comm_free`` drains, the
DCGN comm-thread completer, and the columnar event core's batched
same-instant drains.  A scenario:

* builds its cluster/job on the :class:`~repro.sim.ExploringSimulator`
  it is given (so every event-heap tie is a scheduling choice),
* runs to completion, and
* checks its end-state invariant, raising
  :class:`~repro.check.errors.InvariantViolation` when the state is
  silently wrong.

Deadlocks, livelocks and crashes are *not* caught here — the sweep
runner classifies them.  ``expect`` declares which outcomes are healthy
(normally just ``ok``); ``must_find`` inverts the game for deliberately
buggy fixtures: the sweep fails unless that outcome is observed.

Invariants prefer *order-independent* truths (lock-protected counters
summing correctly, disjoint slots holding their writer's value) so that
every legal interleaving passes and only a real synchronization bug —
lost update, misrouted grant, premature free — fails.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, FrozenSet, Generator, Optional

import numpy as np

from ..hw import ClusterSpec, build_cluster, paper_cluster
from ..mpi import MpiError, MpiJob
from ..sim.core import Simulator
from .buggy import BuggyGrantQueue, BuggyReservingScheduler
from .errors import InvariantViolation

__all__ = ["ScenarioSpec", "SCENARIOS", "scenario_names", "get_scenario"]


class ScenarioSpec:
    """A named, classifiable concurrent scenario."""

    __slots__ = ("name", "run", "doc", "expect", "must_find")

    def __init__(
        self,
        name: str,
        run: Callable[[Simulator], None],
        doc: str,
        expect: FrozenSet[str] = frozenset({"ok"}),
        must_find: Optional[str] = None,
    ) -> None:
        self.name = name
        self.run = run
        self.doc = doc
        self.expect = frozenset(expect)
        self.must_find = must_find

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<ScenarioSpec {self.name!r}>"


def _job(sim: Simulator, n_nodes: int) -> MpiJob:
    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0)
    )
    return MpiJob(cluster, list(range(n_nodes)))


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise InvariantViolation(msg)


# ---------------------------------------------------------------------------
# Passive-target locking
# ---------------------------------------------------------------------------

def _run_lock_writers(sim: Simulator) -> None:
    """3 ranks do read-modify-write increments of one counter on rank
    0's window under exclusive locks.  Any lost update — a grant queue
    handing the lock to two origins at once — breaks the total."""
    job = _job(sim, 3)
    increments = 3

    def prog(ctx):
        w = yield from ctx.win_allocate(1)
        if ctx.rank == 0:
            w.local[:] = 0.0
        yield from w.fence()
        yield from w.fence(end=True)
        cur = np.zeros(1)
        for _ in range(increments):
            yield from w.lock(0, exclusive=True)
            yield from w.get(0, cur)
            yield from w.put(0, cur + 1.0)
            yield from w.unlock(0)
        yield from ctx.barrier()
        if ctx.rank == 0:
            total = float(w.local[0])
            _require(
                total == float(job.size * increments),
                f"lost update: counter {total} != {job.size * increments}",
            )
        yield from w.free()

    job.start(prog)
    job.run()


def _run_lockall_vs_lock(sim: Simulator) -> None:
    """A ``lock_all`` holder (shared on every rank) races two exclusive
    lockers of rank 0's window.  Disjoint slots must hold exactly their
    writer's value; the shared accumulate slot must sum."""
    job = _job(sim, 4)

    def prog(ctx):
        w = yield from ctx.win_allocate(4)
        w.local[:] = 0.0
        yield from w.fence()
        yield from w.fence(end=True)
        if ctx.rank == 1:
            # Shared locks everywhere; writes slot 1 of every rank.
            yield from w.lock_all()
            for t in range(ctx.size):
                yield from w.put(t, np.full(1, 10.0 + t), offset=1)
            yield from w.unlock_all()
        elif ctx.rank in (2, 3):
            # Exclusive read-modify-write on rank 0 slot 0, twice.
            cur = np.zeros(1)
            for _ in range(2):
                yield from w.lock(0, exclusive=True)
                yield from w.get(0, cur, offset=0)
                yield from w.put(0, cur + 1.0, offset=0)
                yield from w.unlock(0)
        yield from ctx.barrier()
        _require(
            float(w.local[1]) == 10.0 + ctx.rank,
            f"rank {ctx.rank} slot1 = {w.local[1]}, want {10.0 + ctx.rank}",
        )
        if ctx.rank == 0:
            _require(
                float(w.local[0]) == 4.0,
                f"rank0 slot0 = {w.local[0]}, want 4.0 (2 lockers x 2)",
            )
        yield from w.free()

    job.start(prog)
    job.run()


def _run_fence_vs_passive(sim: Simulator) -> None:
    """Fence epochs and passive-target locks race on one window: ranks
    0/1 exchange puts inside collective fence epochs while ranks 2/3
    take exclusive locks on rank 1 and accumulate — the grant traffic
    interleaves with the fence's barrier traffic."""
    job = _job(sim, 4)

    def prog(ctx):
        w = yield from ctx.win_allocate(4)
        w.local[:] = 0.0
        yield from w.fence()
        if ctx.rank in (0, 1):
            peer = 1 - ctx.rank
            yield from w.put(peer, np.full(1, 1.0 + ctx.rank), offset=ctx.rank)
        else:
            yield from w.lock(1, exclusive=True)
            yield from w.accumulate(1, np.ones(1), op="sum", offset=3)
            yield from w.unlock(1)
        yield from w.fence()
        if ctx.rank in (0, 1):
            peer = 1 - ctx.rank
            _require(
                float(w.local[peer]) == 1.0 + peer,
                f"rank {ctx.rank} slot{peer} = {w.local[peer]}",
            )
        if ctx.rank == 1:
            _require(
                float(w.local[3]) == 2.0,
                f"accumulate slot = {w.local[3]}, want 2.0",
            )
        yield from w.free()

    job.start(prog)
    job.run()


# ---------------------------------------------------------------------------
# Communicator lifecycle under fire
# ---------------------------------------------------------------------------

def _run_split_during_icollective(sim: Simulator) -> None:
    """``split`` while a nonblocking allreduce is still in flight on
    the parent: the split's allgather and the background schedule share
    matching stores and sequence spaces."""
    job = _job(sim, 4)

    def prog(ctx):
        out = np.zeros(16)
        req = ctx.iallreduce(np.full(16, float(ctx.rank + 1)), out)
        sub = yield from ctx.split(ctx.rank % 2, key=ctx.rank)
        sout = np.zeros(1)
        yield from sub.allreduce(np.ones(1), sout)
        yield from req.wait()
        _require(
            bool(np.all(out == 10.0)),
            f"parent allreduce produced {out[0]}, want 10.0",
        )
        _require(
            float(sout[0]) == 2.0,
            f"sub allreduce produced {sout[0]}, want 2.0",
        )
        yield from sub.free()

    job.start(prog)
    job.run()


def _run_free_with_inflight_rput(sim: Simulator) -> None:
    """Freeing a communicator while a window is live (and an ``rput``
    may still be on the wire) must raise — both the driver-level and
    the collective free — and the orderly window-then-communicator
    sequence must still succeed afterwards."""
    job = _job(sim, 2)
    n = 1 << 12  # rendezvous-sized: still in flight at the free attempts

    def prog(ctx):
        sub = yield from ctx.split(0, key=ctx.rank)
        w = yield from sub.win_allocate(n)
        yield from w.fence()
        req = None
        if sub.rank == 0:
            req = yield from w.rput(1, np.ones(n))
            try:
                sub.comm.free()
                raise InvariantViolation(
                    "driver free succeeded with a live window"
                )
            except MpiError:
                pass
        try:
            yield from sub.free()
            raise InvariantViolation(
                "collective free succeeded with a live window"
            )
        except MpiError:
            pass
        if req is not None:
            yield from req.wait()
        yield from w.fence()
        if sub.rank == 1:
            _require(
                bool(np.all(w.local == 1.0)),
                "rput payload never landed in the target window",
            )
        yield from w.free()
        yield from sub.free()
        return sub.comm

    job.start(prog)
    comms = job.run()
    # The release happens when the LAST rank completes the collective
    # free; check after the whole run, not from inside one rank.
    _require(
        all(c._freed for c in comms),
        "communicator not freed after the orderly window-then-comm free",
    )


def _run_comm_free_drain(sim: Simulator) -> None:
    """Collective free with rendezvous p2p *and* a background
    nonblocking collective still in flight: the drain must hold the
    release back until both the p2p counter and the schedule engine go
    idle, and the pending operations must still complete correctly."""
    job = _job(sim, 4)
    n = 1 << 14

    def prog(ctx):
        sub = yield from ctx.split(0, key=ctx.rank)
        out = np.zeros(n // 8)
        creq = sub.iallreduce(np.ones(n // 8), out)
        if sub.rank == 0:
            preq = sub.isend(np.full(n // 8, 5.0), 1)
        elif sub.rank == 1:
            preq = sub.irecv(np.zeros(n // 8), 0)
        else:
            preq = None
        yield from sub.free()
        yield from creq.wait()
        got = None
        if preq is not None:
            got = yield from preq.wait()
        _require(
            bool(np.all(out == 4.0)),
            f"drained allreduce produced {out[0]}, want 4.0",
        )
        if sub.rank == 1:
            _require(got is not None, "irecv returned no status")
        return sub.comm

    job.start(prog)
    comms = job.run()
    _require(
        all(c._freed for c in comms),
        "deferred free never released the comm after the drain",
    )


# ---------------------------------------------------------------------------
# PSCW generalized active target
# ---------------------------------------------------------------------------

def _run_pscw_skew(sim: Simulator) -> None:
    """Partial-group PSCW with skewed, overlapping groups: rank 0
    exposes to {1, 2}, rank 1 exposes to {2}, rank 2 accesses both —
    post/start/complete/wait notifications race in every order."""
    job = _job(sim, 4)

    def prog(ctx):
        w = yield from ctx.win_allocate(4)
        w.local[:] = 0.0
        yield from w.fence()
        yield from w.fence(end=True)
        if ctx.rank == 0:
            yield from w.post([1, 2])
            yield from w.wait_sync()
            _require(
                float(w.local[1]) == 11.0 and float(w.local[2]) == 22.0,
                f"rank0 window {w.local[:3]}, want [., 11, 22]",
            )
        elif ctx.rank == 1:
            yield from w.post([2])
            yield from w.start([0])
            yield from w.put(0, np.full(1, 11.0), offset=1)
            yield from w.complete()
            yield from w.wait_sync()
            _require(
                float(w.local[0]) == 33.0,
                f"rank1 window {w.local[0]}, want 33",
            )
        elif ctx.rank == 2:
            yield from w.start([0, 1])
            yield from w.put(0, np.full(1, 22.0), offset=2)
            yield from w.put(1, np.full(1, 33.0), offset=0)
            yield from w.complete()
        yield from ctx.barrier()
        yield from w.free()

    job.start(prog)
    job.run()


# ---------------------------------------------------------------------------
# DCGN comm-thread completer
# ---------------------------------------------------------------------------

def _run_dcgn_completer(sim: Simulator) -> None:
    """CPU-rank MPI traffic and GPU-slot sends share one comm-thread
    completer per node; both ping-pongs must finish with the right
    values no matter how the completer interleaves their requests."""
    from ..dcgn import DcgnConfig, DcgnRuntime

    cluster = build_cluster(sim, paper_cluster(nodes=2))
    cfg = DcgnConfig.homogeneous(2, cpu_threads=1, gpus=1, slots_per_gpu=1)
    rt = DcgnRuntime(cluster, cfg)
    # Ranks: node0 = [cpu 0, gpu-slot 1], node1 = [cpu 2, gpu-slot 3].
    result: Dict[str, Any] = {}

    def cpu_kernel(ctx):
        buf = np.zeros(2, dtype=np.float32)
        if ctx.rank == 0:
            buf[:] = [1.0, 2.0]
            yield from ctx.send(2, buf)
            yield from ctx.recv(2, buf)
            result["cpu"] = buf.copy()
        else:
            yield from ctx.recv(0, buf)
            buf *= 10.0
            yield from ctx.send(0, buf)

    def gpu_kernel(ctx):
        comm = ctx.comm
        me = comm.rank(0)
        dbuf = ctx.device.alloc(2, dtype=np.float32)
        if me == 1:
            dbuf.data[:] = [3.0, 4.0]
            yield from comm.send(0, 3, dbuf)
            yield from comm.recv(0, 3, dbuf)
            result["gpu"] = dbuf.data.copy()
        else:
            yield from comm.recv(0, 1, dbuf)
            dbuf.data[:] += 100.0
            yield from comm.send(0, 1, dbuf)

    rt.launch_cpu(cpu_kernel)
    rt.launch_gpu(gpu_kernel)
    rt.run()
    _require(
        "cpu" in result and bool(np.allclose(result["cpu"], [10.0, 20.0])),
        f"cpu ping-pong produced {result.get('cpu')}, want [10, 20]",
    )
    _require(
        "gpu" in result and bool(np.allclose(result["gpu"], [103.0, 104.0])),
        f"gpu ping-pong produced {result.get('gpu')}, want [103, 104]",
    )


# ---------------------------------------------------------------------------
# Structured-array event core: batched drains under the tie-break
# ---------------------------------------------------------------------------

def _run_batch_drain_storm(sim: Simulator) -> None:
    """Same-instant :class:`~repro.sim.batch.EventBatch` carriers race
    plain timeouts and zero-delay follow-ups on the columnar event
    heap.  A deep background fill (> the merge threshold of distinct
    completion times) forces the heap through its vectorized lexsort
    merge while the exploring tie-break pops ready sets and re-inserts
    the losers; two independently committed batches then drain members
    at the *same* instants as three ticker timeouts, and waiters
    resumed from inside a drain immediately re-enter the same instant.
    Invariants are order-independent: every completion fires exactly
    once with its value, delivery is time-monotone at the exact
    scheduled instants, and each instant's tag *set* is the same no
    matter which schedule the seed picked."""
    from ..sim.batch import _MERGE_THRESHOLD, EventBatch
    from ..sim.core import Event

    log = []  # (time, tag) in delivery order
    counts: Dict[str, int] = {}
    values: Dict[str, Any] = {}

    def record(tag):
        def cb(ev: Event) -> None:
            log.append((sim.now, tag))
            counts[tag] = counts.get(tag, 0) + 1
            values[tag] = ev.value

        return cb

    # Background fill: more distinct completion times than the merge
    # threshold, so at least one columnar merge happens mid-schedule.
    n_fill = _MERGE_THRESHOLD + 400
    fill = EventBatch(sim, name="fill")
    for i in range(n_fill):
        ev = Event(sim, name=f"fill.{i}")
        ev.callbacks.append(record(f"fill.{i}"))
        fill.add(0.25 + i * 1e-6, ev, i)
    fill.commit()

    # Two independently committed batches with members at the SAME
    # instants: two carriers per wave, co-scheduled with the tickers.
    # Wave times are dyadic so process-relative delays reconstruct
    # them exactly and the ready sets genuinely collide.
    waves = [1.0, 1.0 + 2.0 ** -20, 2.0]
    storm: Dict[str, Event] = {}
    for b in range(2):
        batch = EventBatch(sim, name=f"storm{b}")
        for wi, t in enumerate(waves):
            for m in range(4):
                tag = f"storm{b}.w{wi}.m{m}"
                ev = Event(sim, name=tag)
                ev.callbacks.append(record(tag))
                storm[tag] = ev
                batch.add(t, ev, (b, wi, m))
        batch.commit()

    def ticker(name: str) -> Generator:
        for t in waves:
            yield sim.timeout(t - sim.now, name=name)
            log.append((sim.now, name))

    def waiter(tag: str, wave: float) -> Generator:
        yield storm[tag]
        _require(
            sim.now == wave,
            f"waiter on {tag} resumed at {sim.now!r}, want {wave!r}",
        )
        # Zero-delay follow-up: lands back in the instant's ready set.
        yield sim.timeout(0.0, name=f"post.{tag}")
        log.append((sim.now, f"post.{tag}"))

    for k in range(3):
        sim.process(ticker(f"tick{k}"), name=f"storm.tick{k}")
    waited = [
        ("storm0.w0.m0", waves[0]),
        ("storm1.w0.m3", waves[0]),
        ("storm0.w2.m1", waves[2]),
    ]
    for tag, wave in waited:
        sim.process(waiter(tag, wave), name=f"storm.wait.{tag}")
    sim.run()

    # Exactly-once delivery with the right payloads.
    n_storm = 2 * len(waves) * 4
    _require(
        len(values) == n_fill + n_storm,
        f"{len(values)} distinct completions fired, "
        f"want {n_fill + n_storm}",
    )
    dup = sorted(t for t, c in counts.items() if c != 1)
    _require(not dup, f"double-fired completions: {dup[:5]}")
    for i in range(n_fill):
        _require(
            values[f"fill.{i}"] == i,
            f"fill.{i} delivered {values[f'fill.{i}']!r}",
        )
    for b in range(2):
        for wi in range(len(waves)):
            for m in range(4):
                tag = f"storm{b}.w{wi}.m{m}"
                _require(
                    values[tag] == (b, wi, m),
                    f"{tag} delivered {values[tag]!r}",
                )

    # Time-monotone delivery at the exact scheduled instants.
    times = [t for t, _ in log]
    _require(
        all(a <= b2 for a, b2 in zip(times, times[1:])),
        "delivery log is not time-monotone",
    )
    for wi, t in enumerate(waves):
        want = {f"storm{b}.w{wi}.m{m}" for b in range(2) for m in range(4)}
        want |= {f"tick{k}" for k in range(3)}
        want |= {f"post.{tag}" for tag, wave in waited if wave == t}
        got = {tag for tt, tag in log if tt == t}
        _require(
            got == want,
            f"wave {wi} tag set {sorted(got ^ want)} out of place",
        )

    # The schedule actually exercised the new core: the columnar heap
    # merged at least once, and the tie-break had real choices.
    _require(
        sim.stats.heap_merges >= 1,
        f"columnar heap never merged ({sim.stats.heap_merges})",
    )
    _require(
        sim.stats.batch_events == n_fill + n_storm,
        f"batch_events {sim.stats.batch_events}, "
        f"want {n_fill + n_storm}",
    )
    _require(
        getattr(sim, "decisions", 1) > 0,
        "no scheduling decisions: the storm never built a ready set",
    )


# ---------------------------------------------------------------------------
# Serving scheduler: admission, cancellation and reservation races
# ---------------------------------------------------------------------------

def _scheduler(sim: Simulator, n_nodes: int):
    from ..serve import ClusterScheduler

    cluster = build_cluster(
        sim, ClusterSpec(nodes=n_nodes, gpus_per_node=0)
    )
    return ClusterScheduler(cluster, policy="packed", seed=0)


def _serve_prog_factory(duration_s: float = 0.0):
    """A job program: allreduce (checks tag isolation) + optional work."""

    def prog(ctx):
        if duration_s > 0.0:
            yield ctx.sim.timeout(duration_s)
        out = np.zeros(16)
        yield from ctx.allreduce(np.ones(16), out)
        _require(
            float(out[0]) == float(ctx.size),
            f"job allreduce produced {out[0]}, want {ctx.size} — "
            "traffic leaked between job communicators",
        )

    return prog


def _check_serve_end_state(sched, jobs) -> None:
    """Shared order-independent invariants after a scheduler run."""
    from ..serve.scheduler import CANCELLED, DONE, TERMINAL

    for job in jobs:
        _require(
            job.state in TERMINAL,
            f"job {job.name!r} ended non-terminal: {job.state}",
        )
        if job.state == DONE:
            _require(
                job.comm is not None and job.comm._freed,
                f"done job {job.name!r} left its communicator live",
            )
        if job.state == CANCELLED:
            _require(
                job.comm is None,
                f"cancelled job {job.name!r} got a communicator",
            )
    _require(
        sched.n_free == sched.cluster.n_nodes,
        f"{sched.cluster.n_nodes - sched.n_free} nodes still owned "
        "after every job ended",
    )
    # No two jobs whose node sets intersect may have overlapping
    # ownership intervals (reservation at place_t, release at end_t).
    placed = [j for j in jobs if j.nodes is not None and j.end_t is not None]
    for i, a in enumerate(placed):
        for b in placed[i + 1:]:
            if not (set(a.nodes) & set(b.nodes)):
                continue
            _require(
                not (a.place_t < b.end_t and b.place_t < a.end_t),
                f"jobs {a.name!r} and {b.name!r} owned shared nodes "
                "concurrently",
            )


def _run_sched_cancel_mid_placement(sim: Simulator) -> None:
    """A cancel lands at the exact instant a job's placement delay
    expires: the tie-break decides whether the job launches (the cancel
    then raises — running jobs need preemption) or the reservation is
    rolled back.  Both outcomes must leave the cluster clean."""
    from ..serve import SchedulerError

    sched = _scheduler(sim, 4)
    job = sched.submit(
        _job_spec("victim", 2, _serve_prog_factory(duration_s=1e-4))
    )

    def canceller() -> Generator:
        # Sleep exactly the launch overhead: the cancel and the
        # placement completion become a same-instant tie.
        yield sim.timeout(sched._launch_overhead_s(2))
        try:
            sched.cancel(job)
        except SchedulerError:
            pass  # lost the race: the job is already running

    sim.process(canceller(), name="serve.canceller")
    sim.run()
    _check_serve_end_state(sched, [job])
    _require(
        sched.stats["completed"] + sched.stats["cancelled"] == 1,
        f"stats inconsistent: {sched.stats}",
    )


def _run_sched_free_race(sim: Simulator) -> None:
    """A full-cluster job's completion (communicator free + node release
    + synchronous re-admission) races fresh submissions: two jobs are
    already queued when the release happens, and a third submission
    rides the completion callback into the same instant."""
    sched = _scheduler(sim, 4)
    prog = _serve_prog_factory(duration_s=5e-5)
    job_a = sched.submit(_job_spec("hog", 4, prog))
    late = []

    def submitter(name: str, n: int) -> Generator:
        yield sim.timeout(1e-5)  # while the hog is still placing/running
        late.append(sched.submit(_job_spec(name, n, prog)))

    def on_done() -> Generator:
        yield job_a.done  # same instant as the release + re-admission
        late.append(sched.submit(_job_spec("tail", 1, prog)))

    sim.process(submitter("mid", 2), name="serve.submit.mid")
    sim.process(submitter("big", 3), name="serve.submit.big")
    sim.process(on_done(), name="serve.submit.tail")
    sim.run()
    jobs = [job_a] + late
    _require(len(jobs) == 4, f"only {len(jobs)} jobs submitted")
    _check_serve_end_state(sched, jobs)
    _require(
        sched.stats["completed"] == 4,
        f"completed {sched.stats['completed']} of 4 jobs",
    )


def _run_sched_last_nodes(sim: Simulator) -> None:
    """Two 3-node jobs contend for 4 nodes: whichever submission wins
    the same-instant tie runs first and the other must wait — they can
    never hold nodes concurrently (pigeonhole: the sets must share at
    least two nodes)."""
    sched = _scheduler(sim, 4)
    prog = _serve_prog_factory(duration_s=5e-5)
    jobs = []

    def submitter(name: str) -> Generator:
        yield sim.timeout(0.0)
        jobs.append(sched.submit(_job_spec(name, 3, prog)))

    sim.process(submitter("left"), name="serve.submit.left")
    sim.process(submitter("right"), name="serve.submit.right")
    sim.run()
    _require(len(jobs) == 2, f"only {len(jobs)} jobs submitted")
    _check_serve_end_state(sched, jobs)
    starts = sorted(j.place_t for j in jobs)
    ends = sorted(j.end_t for j in jobs)
    _require(
        starts[1] >= ends[0],
        "second 3-node job started before the first released",
    )


def _job_spec(name: str, n_nodes: int, prog):
    from ..serve import JobSpec

    return JobSpec(name=name, n_nodes=n_nodes, program=prog)


# ---------------------------------------------------------------------------
# Detector fixtures: the checker must catch these
# ---------------------------------------------------------------------------

def _run_buggy_double_alloc(sim: Simulator) -> None:
    """The scheduler TOCTOU fixture (see :mod:`repro.check.buggy`): a
    second admission lands inside the select/reserve window, reads the
    stale free set, and both jobs reserve the same nodes.  The sweep
    must observe the double allocation on at least one seed."""
    cluster = build_cluster(sim, ClusterSpec(nodes=4, gpus_per_node=0))
    sched = BuggyReservingScheduler(cluster, policy="packed", seed=0)
    prog = _serve_prog_factory(duration_s=5e-5)
    jobs = [sched.submit(_job_spec("first", 2, prog))]

    def submitter() -> Generator:
        # Races the first job's deferred reservation at instant 0.
        yield sim.timeout(0.0)
        jobs.append(sched.submit(_job_spec("second", 2, prog)))

    sim.process(submitter(), name="serve.submit.second")
    sim.run()
    hits = sched.overlaps()
    if hits:
        ja, jb, node = hits[0]
        raise InvariantViolation(
            f"double allocation: jobs {ja} and {jb} both owned node "
            f"{node}"
        )

def _run_buggy_grant_queue(sim: Simulator) -> None:
    """The lock-order-inversion fixture (see :mod:`repro.check.buggy`):
    the sweep must observe at least one deadlock — and attach a
    waits-for chain naming both mutexes — or the checker has no
    teeth."""
    q = BuggyGrantQueue(sim)
    rounds = 3

    def requester() -> Generator:
        for _ in range(rounds):
            yield from q.enqueue()

    def granter() -> Generator:
        for _ in range(rounds):
            yield from q.grant()

    sim.process(requester(), name="grantq.requester")
    sim.process(granter(), name="grantq.granter")
    sim.run()
    _require(
        q.pending >= 0 and q.granted <= rounds,
        f"grant queue accounting broke: {q.pending} pending, "
        f"{q.granted} granted",
    )


def _run_spin_livelock(sim: Simulator) -> None:
    """Two processes re-scheduling zero-delay events forever: simulated
    time never advances, the heap never drains — only the livelock
    detector can classify this."""

    def spinner() -> Generator:
        while True:
            yield sim.timeout(0.0)

    sim.process(spinner(), name="spin.a")
    sim.process(spinner(), name="spin.b")
    sim.run()


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

SCENARIOS: Dict[str, ScenarioSpec] = {
    spec.name: spec
    for spec in [
        ScenarioSpec(
            "lock-writers",
            _run_lock_writers,
            "exclusive-lock read-modify-write counter, 3 writers",
        ),
        ScenarioSpec(
            "lockall-vs-lock",
            _run_lockall_vs_lock,
            "lock_all shared holder vs exclusive lockers on one rank",
        ),
        ScenarioSpec(
            "fence-vs-passive",
            _run_fence_vs_passive,
            "fence epochs racing passive-target locks on one window",
        ),
        ScenarioSpec(
            "split-during-icollective",
            _run_split_during_icollective,
            "comm split while a nonblocking allreduce is in flight",
        ),
        ScenarioSpec(
            "free-with-inflight-rput",
            _run_free_with_inflight_rput,
            "comm free with a live window / in-flight rput must raise",
        ),
        ScenarioSpec(
            "comm-free-drain",
            _run_comm_free_drain,
            "collective free drains pending p2p + background collective",
        ),
        ScenarioSpec(
            "pscw-skew",
            _run_pscw_skew,
            "overlapping partial-group PSCW post/start/complete skew",
        ),
        ScenarioSpec(
            "dcgn-completer",
            _run_dcgn_completer,
            "comm-thread completer multiplexing CPU and GPU-slot traffic",
        ),
        ScenarioSpec(
            "batch-drain-storm",
            _run_batch_drain_storm,
            "same-instant EventBatch drains vs timeouts on the "
            "columnar heap",
        ),
        ScenarioSpec(
            "sched-cancel-mid-placement",
            _run_sched_cancel_mid_placement,
            "cancel racing the placement delay's expiry instant",
        ),
        ScenarioSpec(
            "sched-free-race",
            _run_sched_free_race,
            "full-cluster job release racing queued + fresh admissions",
        ),
        ScenarioSpec(
            "sched-last-nodes",
            _run_sched_last_nodes,
            "two 3-node jobs contending for 4 nodes; never concurrent",
        ),
        ScenarioSpec(
            "buggy-double-alloc",
            _run_buggy_double_alloc,
            "KNOWN-BUGGY select/reserve TOCTOU; sweep must find the "
            "double allocation",
            expect=frozenset({"ok", "invariant-violation"}),
            must_find="invariant-violation",
        ),
        ScenarioSpec(
            "buggy-grant-queue",
            _run_buggy_grant_queue,
            "KNOWN-BUGGY lock-order inversion; sweep must find deadlock",
            expect=frozenset({"ok", "deadlock"}),
            must_find="deadlock",
        ),
        ScenarioSpec(
            "spin-livelock",
            _run_spin_livelock,
            "KNOWN-BUGGY zero-delay spin; sweep must classify livelock",
            expect=frozenset({"livelock"}),
            must_find="livelock",
        ),
    ]
}


def scenario_names() -> list:
    """All registered scenario names, registration-ordered."""
    return list(SCENARIOS)


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a scenario by name (KeyError lists the valid names)."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; valid: {', '.join(SCENARIOS)}"
        ) from None
