"""CLI for the schedule-exploration model checker.

Examples::

    # Sweep the whole scenario library across 200 seeds, write the
    # classification JSON, exit nonzero on any failed scenario:
    python -m repro.check --sweep 200 --json check_report.json

    # Sweep one scenario:
    python -m repro.check --sweep 500 --scenario lock-writers

    # Replay a reported seed with its full schedule trace:
    python -m repro.check --scenario pscw-skew --replay 17

    # List scenarios:
    python -m repro.check --list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .runner import DEFAULT_LIVELOCK_WINDOW, replay, sweep
from .scenarios import SCENARIOS


def _list_scenarios() -> int:
    width = max(len(n) for n in SCENARIOS)
    for name, spec in SCENARIOS.items():
        extra = ""
        if spec.must_find is not None:
            extra = f"  [must find: {spec.must_find}]"
        print(f"{name:<{width}}  {spec.doc}{extra}")
    return 0


def _do_replay(name: str, seed: int, livelock_window: int, trace_limit: int) -> int:
    result = replay(name, seed, livelock_window=livelock_window)
    print(
        f"scenario {name!r} seed {seed}: {result.outcome} "
        f"(t={result.final_time:.6f}s, {result.steps} events, "
        f"{result.decisions} scheduling decisions)"
    )
    if result.detail:
        print(result.detail)
    trace = result.trace or []
    shown = trace[:trace_limit]
    print(f"schedule trace ({len(shown)}/{len(trace)} decisions shown):")
    for i, c in enumerate(shown):
        picked = c.ready[c.picked]
        others = ", ".join(
            n for j, n in enumerate(c.ready) if j != c.picked
        )
        print(
            f"  [{i:>4}] t={c.time:.9f} prio={c.priority} "
            f"picked {picked!r} over [{others}]"
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description=(
            "Model-check the concurrent runtime by sweeping random-but-"
            "replayable schedules and classifying each as ok / deadlock "
            "/ livelock / crash / invariant-violation."
        ),
    )
    parser.add_argument(
        "--sweep",
        type=int,
        default=100,
        metavar="N",
        help="seeds per scenario (default 100)",
    )
    parser.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="restrict to this scenario (repeatable; default: all)",
    )
    parser.add_argument(
        "--base-seed",
        type=int,
        default=0,
        help="first seed of the sweep (default 0)",
    )
    parser.add_argument(
        "--livelock-steps",
        type=int,
        default=DEFAULT_LIVELOCK_WINDOW,
        metavar="K",
        help=(
            "same-instant events before a schedule counts as livelocked "
            f"(default {DEFAULT_LIVELOCK_WINDOW})"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="write the classification report as JSON",
    )
    parser.add_argument(
        "--replay",
        type=int,
        metavar="SEED",
        help="replay one seed of --scenario with its schedule trace",
    )
    parser.add_argument(
        "--trace-limit",
        type=int,
        default=50,
        help="max trace decisions printed by --replay (default 50)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the progress line"
    )
    args = parser.parse_args(argv)

    if args.list:
        return _list_scenarios()

    names = args.scenario
    if names:
        unknown = [n for n in names if n not in SCENARIOS]
        if unknown:
            parser.error(
                f"unknown scenario(s): {', '.join(unknown)} "
                f"(valid: {', '.join(SCENARIOS)})"
            )

    if args.replay is not None:
        if not names or len(names) != 1:
            parser.error("--replay needs exactly one --scenario NAME")
        return _do_replay(
            names[0], args.replay, args.livelock_steps, args.trace_limit
        )

    def progress(name: str, done: int, total: int) -> None:
        if not args.quiet and sys.stderr.isatty():
            print(
                f"\r{name:<26} {done}/{total} seeds", end="", file=sys.stderr
            )
            if done == total:
                print(file=sys.stderr)

    report = sweep(
        args.sweep,
        names=names,
        base_seed=args.base_seed,
        livelock_window=args.livelock_steps,
        progress=progress,
    )
    print(report.table())
    if args.json:
        report.to_json(args.json)
        print(f"classification JSON written to {args.json}")
    if not report.ok:
        failed = [n for n, r in report.scenarios.items() if not r.passed]
        print(f"FAILED scenarios: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
