"""GAS-runtime error types."""

from __future__ import annotations

__all__ = ["GasError"]


class GasError(Exception):
    """Errors from the GPU-as-slave baseline runtime."""
