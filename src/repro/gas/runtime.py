"""The GAS (GPU-as-slave) + MPI baseline runtime (paper §2.3).

This is the conventional model DCGN is evaluated against: one MPI
process per computational unit, each driving its GPU directly —
kernels are split at communication points, and the CPU explicitly
pushes/pulls device memory around kernel launches.  There are no comm
threads, no polling, and no GPU-sourced communication; consequently no
DCGN overhead — but also no dynamic communication from inside kernels.

``GasContext`` combines an MPI rank with (optionally) a dedicated GPU
and the push/pull helpers the model is named after.
"""

from __future__ import annotations

from typing import Any, Callable, Generator, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.device import GpuDevice
from ..gpusim.driver import launch as driver_launch
from ..gpusim.driver import memcpy_d2h, memcpy_h2d
from ..gpusim.kernel import KernelFn, KernelHandle, LaunchConfig
from ..gpusim.memory import DeviceBuffer
from ..hw.cluster import Cluster
from ..mpi.communicator import MpiContext
from ..mpi.job import MpiJob
from ..sim.core import Event, Process
from .errors import GasError

__all__ = ["GasContext", "GasJob"]


class GasContext:
    """One GAS process: an MPI context plus an optional owned GPU."""

    def __init__(self, mpi_ctx: MpiContext, gpu: Optional[GpuDevice]) -> None:
        self.mpi = mpi_ctx
        self.gpu = gpu
        self.sim = mpi_ctx.sim

    @property
    def rank(self) -> int:
        return self.mpi.rank

    @property
    def size(self) -> int:
        return self.mpi.size

    def _need_gpu(self) -> GpuDevice:
        if self.gpu is None:
            raise GasError(f"rank {self.rank} owns no GPU")
        return self.gpu

    # -- GPU-as-slave primitives -------------------------------------------
    def alloc(self, shape, dtype=np.float64, name: str = "") -> DeviceBuffer:
        """Allocate device memory on the owned GPU."""
        return self._need_gpu().alloc(shape, dtype=dtype, name=name)

    def push(
        self,
        dbuf: DeviceBuffer,
        src: np.ndarray,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, int]:
        """Host→device copy (the "push" of the push/pull paradigm)."""
        n = yield from memcpy_h2d(self._need_gpu(), dbuf, src, nbytes=nbytes)
        return n

    def pull(
        self,
        dst: np.ndarray,
        dbuf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, int]:
        """Device→host copy (the "pull")."""
        n = yield from memcpy_d2h(self._need_gpu(), dst, dbuf, nbytes=nbytes)
        return n

    def launch(
        self,
        fn: KernelFn,
        config: LaunchConfig,
        args: Sequence[Any] = (),
        name: str = "",
    ) -> Generator[Event, Any, KernelHandle]:
        """Launch a (non-communicating) kernel on the owned GPU."""
        handle = yield from driver_launch(
            self._need_gpu(), fn, config, args=args, name=name
        )
        return handle

    def run_kernel(
        self,
        fn: KernelFn,
        config: LaunchConfig,
        args: Sequence[Any] = (),
        name: str = "",
    ) -> Generator[Event, Any, KernelHandle]:
        """Launch and wait — the GAS pattern of splitting at comm points."""
        handle = yield from self.launch(fn, config, args=args, name=name)
        yield handle.done
        return handle


class GasJob:
    """A set of GAS processes with dedicated GPUs.

    ``gpu_ranks`` maps rank → (node, gpu_index) or None for CPU-only
    ranks (e.g. a master).  The MPI placement is derived from it.
    """

    def __init__(
        self,
        cluster: Cluster,
        assignments: Sequence[Optional[Tuple[int, int]]],
        master_node: int = 0,
    ) -> None:
        if not assignments:
            raise GasError("job needs at least one rank")
        placement: List[int] = []
        gpus: List[Optional[GpuDevice]] = []
        for a in assignments:
            if a is None:
                placement.append(master_node)
                gpus.append(None)
            else:
                node, g = a
                if not (0 <= node < cluster.n_nodes):
                    raise GasError(f"bad node {node}")
                if not (0 <= g < len(cluster.nodes[node].gpus)):
                    raise GasError(f"node {node} has no GPU {g}")
                placement.append(node)
                gpus.append(cluster.nodes[node].gpus[g])
        self.cluster = cluster
        self.sim = cluster.sim
        self.mpi_job = MpiJob(cluster, placement)
        self._gpus = gpus
        self._procs: List[Process] = []

    @classmethod
    def all_gpus(
        cls, cluster: Cluster, with_master: bool = False
    ) -> "GasJob":
        """One rank per GPU in the cluster (optionally + a CPU master).

        The master, when present, is rank 0.
        """
        assignments: List[Optional[Tuple[int, int]]] = []
        if with_master:
            assignments.append(None)
        for n, node in enumerate(cluster.nodes):
            for g in range(len(node.gpus)):
                assignments.append((n, g))
        return cls(cluster, assignments)

    @property
    def size(self) -> int:
        return self.mpi_job.size

    def context(self, rank: int) -> GasContext:
        return GasContext(self.mpi_job.comm.ctx(rank), self._gpus[rank])

    def start(
        self,
        fn: Callable[..., Generator[Event, Any, Any]],
        *args: Any,
        ranks: Optional[Sequence[int]] = None,
    ) -> List[Process]:
        """Spawn ``fn(gas_ctx, *args)`` on each rank."""
        targets = range(self.size) if ranks is None else ranks
        procs = []
        for r in targets:
            ctx = self.context(r)
            p = self.sim.process(fn(ctx, *args), name=f"gas.rank{r}")
            procs.append(p)
        self._procs.extend(procs)
        return procs

    def run(self, until: Optional[float] = None) -> List[Any]:
        """Run to completion; returns per-process results."""
        self.sim.run(until=until)
        for p in self._procs:
            if p.is_alive:
                raise GasError(f"{p} still alive after run()")
        return [p.value for p in self._procs]
