"""GPU-as-slave + MPI baseline runtime (the paper's comparison model)."""

from .errors import GasError
from .pipeline import GasPipeline, PipelineStage
from .runtime import GasContext, GasJob

__all__ = ["GasContext", "GasJob", "GasError", "GasPipeline", "PipelineStage"]
