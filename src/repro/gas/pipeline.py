"""Static pipelining — the second conventional GAS pattern (paper §2.3).

"Another GAS method involves dividing the task domain into N parts and
then connecting those N parts into a pipeline.  Data is given to the
first set of GPUs, which then all perform the same stage of a pipeline.
When the first set finishes a piece of data, the data is shipped to the
second set of GPUs for processing ...  this method does not extend well
to problems poorly suited to pipelining."

:class:`GasPipeline` implements that pattern over the simulated cluster:
each stage owns one GPU; items flow stage→stage over MPI with explicit
push/pull around each kernel.  It exists as the contrast case for
DCGN's dynamic model (and to measure pipeline fill/drain costs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..gpusim.kernel import LaunchConfig
from ..hw.cluster import Cluster
from ..sim.core import Event
from .errors import GasError
from .runtime import GasContext, GasJob

__all__ = ["PipelineStage", "GasPipeline"]

#: Wire tag for inter-stage item transfer.
_ITEM_TAG = 77
_DONE = -1


@dataclass(frozen=True)
class PipelineStage:
    """One pipeline stage: a transform + its device cost.

    ``transform(item_array) -> item_array`` runs on real data;
    ``seconds_per_item`` is the modelled kernel time.
    """

    name: str
    transform: Callable[[np.ndarray], np.ndarray]
    seconds_per_item: float


class GasPipeline:
    """A linear pipeline of GPU stages over MPI (one GPU per stage)."""

    def __init__(
        self,
        cluster: Cluster,
        stages: Sequence[PipelineStage],
        item_shape: Tuple[int, ...],
        dtype=np.float64,
    ) -> None:
        if not stages:
            raise GasError("pipeline needs at least one stage")
        total_gpus = sum(len(n.gpus) for n in cluster.nodes)
        if total_gpus < len(stages):
            raise GasError(
                f"{len(stages)} stages need {len(stages)} GPUs; "
                f"cluster has {total_gpus}"
            )
        self.cluster = cluster
        self.stages = list(stages)
        self.item_shape = tuple(item_shape)
        self.dtype = np.dtype(dtype)
        assignments: List[Optional[Tuple[int, int]]] = []
        i = 0
        for n, node in enumerate(cluster.nodes):
            for g in range(len(node.gpus)):
                if i < len(stages):
                    assignments.append((n, g))
                    i += 1
        self.job = GasJob(cluster, assignments)
        self.results: List[np.ndarray] = []
        self.elapsed: float = 0.0

    def _stage_proc(self, ctx: GasContext, items: List[np.ndarray]):
        stage_idx = ctx.rank
        stage = self.stages[stage_idx]
        n_stages = len(self.stages)
        first = stage_idx == 0
        last = stage_idx == n_stages - 1
        item = np.zeros(self.item_shape, dtype=self.dtype)
        header = np.zeros(1, dtype=np.int64)
        dbuf = ctx.alloc(self.item_shape, dtype=self.dtype,
                         name=f"stage{stage_idx}")
        t0 = ctx.sim.now

        def kernel(kctx):
            yield from kctx.compute(seconds=stage.seconds_per_item)

        count = len(items) if first else None
        idx = 0
        while True:
            if first:
                if idx >= len(items):
                    break
                item[...] = items[idx]
                idx += 1
            else:
                yield from ctx.mpi.recv(header, source=stage_idx - 1,
                                        tag=_ITEM_TAG)
                if int(header[0]) == _DONE:
                    break
                yield from ctx.mpi.recv(item, source=stage_idx - 1,
                                        tag=_ITEM_TAG + 1)
            # GPU-as-slave: push, kernel (transforms device memory), pull.
            yield from ctx.push(dbuf, item)
            yield from ctx.run_kernel(kernel, LaunchConfig(grid_blocks=1))
            dbuf.data[...] = stage.transform(dbuf.data)
            yield from ctx.pull(item, dbuf)
            if last:
                self.results.append(item.copy())
            else:
                header[0] = 1
                yield from ctx.mpi.send(header, dest=stage_idx + 1,
                                        tag=_ITEM_TAG)
                yield from ctx.mpi.send(item, dest=stage_idx + 1,
                                        tag=_ITEM_TAG + 1)
        if not last:
            header[0] = _DONE
            yield from ctx.mpi.send(header, dest=stage_idx + 1,
                                    tag=_ITEM_TAG)
        if last:
            self.elapsed = ctx.sim.now - t0
        dbuf.free()

    def run(self, items: Sequence[np.ndarray]) -> List[np.ndarray]:
        """Push ``items`` through the pipeline; returns transformed items.

        Output order is preserved (linear pipeline, FIFO links).
        """
        items = [np.asarray(x, dtype=self.dtype) for x in items]
        for x in items:
            if x.shape != self.item_shape:
                raise GasError(
                    f"item shape {x.shape} != pipeline {self.item_shape}"
                )
        self.job.start(
            self._stage_proc, list(items), ranks=range(len(self.stages))
        )
        self.job.run()
        return self.results
