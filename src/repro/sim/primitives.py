"""Composite events: wait for any/all of a set of events."""

from __future__ import annotations

from typing import Any, Dict, Iterable, List

from .core import Event, Simulator

__all__ = ["AnyOf", "AllOf", "any_of", "all_of"]


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`.

    The condition's value is a ``dict`` mapping each *triggered* member
    event to its value at the moment the condition fired.  If any member
    fails before the condition is satisfied, the condition fails with that
    member's exception.
    """

    __slots__ = ("_events", "_done")

    def __init__(self, sim: Simulator, events: Iterable[Event], name: str) -> None:
        super().__init__(sim, name=name)
        self._events: List[Event] = list(events)
        self._done = 0
        for e in self._events:
            if e.sim is not sim:
                raise ValueError("all condition members must share a simulator")
        if not self._events:
            # Vacuously satisfied.
            self.succeed({})
            return
        for e in self._events:
            e.add_callback(self._check)

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._done += 1
        if self._satisfied():
            # Only events that have actually *occurred* (processed) belong in
            # the value dict; a scheduled-but-future Timeout carries its value
            # from construction and must be excluded.
            self.succeed(
                {e: e._value for e in self._events if e.processed and e._ok}
            )


class AnyOf(_Condition):
    """Fires when the first member event fires."""

    __slots__ = ()

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="any_of")

    def _satisfied(self) -> bool:
        return self._done >= 1


class AllOf(_Condition):
    """Fires when every member event has fired."""

    __slots__ = ()

    def __init__(self, sim: Simulator, events: Iterable[Event]) -> None:
        super().__init__(sim, events, name="all_of")

    def _satisfied(self) -> bool:
        return self._done >= len(self._events)


def any_of(sim: Simulator, events: Iterable[Event]) -> AnyOf:
    """Convenience wrapper for :class:`AnyOf`."""
    return AnyOf(sim, events)


def all_of(sim: Simulator, events: Iterable[Event]) -> AllOf:
    """Convenience wrapper for :class:`AllOf`."""
    return AllOf(sim, events)
