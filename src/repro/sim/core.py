"""Generator-coroutine discrete-event simulation kernel.

This is the substrate everything else in :mod:`repro` runs on.  All of the
"threads" in the paper — CPU-kernel threads, GPU-kernel threads, the DCGN
communication thread, MPI progress engines, and GPU thread-blocks — are
modelled as :class:`Process` coroutines advancing in simulated time.

Design notes
------------
* Simulated time is a ``float`` in **seconds**.  Helpers :func:`us` and
  :func:`ms` convert from micro/milliseconds, which is how hardware
  parameters are naturally expressed.
* Events follow the SimPy protocol loosely: a process ``yield``\\ s an
  :class:`Event`; the kernel resumes it with the event's value (or throws
  the event's exception) once the event fires.
* The kernel is fully deterministic: ties in the event heap are broken by
  a monotonically increasing sequence number.  The tie-break is pluggable
  (:meth:`Simulator._pop_next`): :class:`~repro.sim.explore.ExploringSimulator`
  overrides it to explore random-but-replayable interleavings of events
  co-scheduled at one ``(time, priority)``.
* Deadlock detection: when the heap drains while processes remain blocked,
  :meth:`Simulator.run` raises :class:`~repro.sim.errors.DeadlockError`
  (unless disabled).  This converts would-be hangs into testable failures.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Generator, Iterable, Optional

from .errors import (
    DeadlockError,
    Interrupt,
    ScheduleError,
    SimulationError,
    StopSimulation,
)
from .stats import SimStats

__all__ = [
    "PENDING",
    "URGENT",
    "NORMAL",
    "LOW",
    "us",
    "ms",
    "Event",
    "Timeout",
    "Process",
    "Simulator",
]

#: Sentinel for "event has no value yet".
PENDING = object()

#: Scheduling priorities (lower value pops first at equal times).
URGENT = 0
NORMAL = 1
LOW = 2


def us(x: float) -> float:
    """Convert microseconds to simulated seconds."""
    return x * 1e-6


def ms(x: float) -> float:
    """Convert milliseconds to simulated seconds."""
    return x * 1e-3


class Event:
    """A one-shot occurrence in simulated time.

    An event is *triggered* once it has a value (or an exception), and
    *processed* once its callbacks have run.  Callbacks added after
    processing are scheduled to run immediately (same simulated time),
    which lets processes wait on events that already happened.
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_defused", "name")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        #: ``None`` once the event has been processed.
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: Optional[bool] = None
        # A failed event whose failure was delivered to at least one waiter
        # is "defused"; undefused failures crash the simulation (they would
        # otherwise be silently lost).
        self._defused = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value or an exception."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or exception instance if it failed)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise ScheduleError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    def fail(self, exc: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception to be thrown into waiters."""
        if not isinstance(exc, BaseException):
            raise TypeError(f"fail() needs an exception, got {exc!r}")
        if self.triggered:
            raise ScheduleError(f"{self!r} already triggered")
        self._ok = False
        self._value = exc
        self.sim._schedule(self, delay=0.0, priority=priority)
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it won't crash the run."""
        self._defused = True

    # -- callbacks -----------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run ``fn(event)`` when the event is processed.

        If the event was already processed the callback runs at the current
        simulated time via an immediate bridge event.
        """
        if self.callbacks is not None:
            self.callbacks.append(fn)
        else:
            # Already processed: bridge through a fresh immediate event so
            # the callback still runs from the main loop, never re-entrantly.
            bridge = Event(self.sim, name=f"bridge({self.name})")
            bridge.callbacks.append(lambda _e: fn(self))
            bridge._ok = self._ok
            bridge._value = self._value
            self.sim._schedule(bridge, delay=0.0, priority=URGENT)

    def remove_callback(self, fn: Callable[["Event"], None]) -> None:
        """Remove a previously added callback (no-op if absent/processed)."""
        if self.callbacks is not None:
            try:
                self.callbacks.remove(fn)
            except ValueError:
                pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = (
            "processed"
            if self.processed
            else "triggered" if self.triggered else "pending"
        )
        label = f" {self.name!r}" if self.name else ""
        return f"<{type(self).__name__}{label} {state}>"


class Timeout(Event):
    """An event that fires ``delay`` simulated seconds after creation."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: Any = None,
        name: str = "",
    ) -> None:
        if delay < 0:
            raise ScheduleError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=name or f"timeout({delay:g})")
        self.delay = delay
        self._ok = True
        self._value = value
        sim._schedule(self, delay=delay, priority=NORMAL)


ProcessGen = Generator[Event, Any, Any]


class Process(Event):
    """A simulated thread of control, driven by a generator.

    The generator yields :class:`Event` instances; the kernel resumes it
    with each event's value.  A ``Process`` is itself an :class:`Event`
    that fires when the generator returns (value = return value) or raises
    (failure), so processes can ``yield`` other processes to join them.
    """

    __slots__ = ("gen", "_target", "_interrupts")

    def __init__(self, sim: "Simulator", gen: ProcessGen, name: str = "") -> None:
        if not hasattr(gen, "send"):
            raise TypeError(
                f"Process needs a generator, got {type(gen).__name__}; "
                "did you forget to call the generator function?"
            )
        super().__init__(sim, name=name or getattr(gen, "__name__", "process"))
        self.gen = gen
        #: Event this process is currently blocked on (None when runnable).
        self._target: Optional[Event] = None
        self._interrupts: list[Interrupt] = []
        sim._live.add(self)
        # First resumption happens "now" via an initialization event.
        init = Event(sim, name=f"init({self.name})")
        init._ok = True
        init._value = None
        init.callbacks.append(self._resume)
        sim._schedule(init, delay=0.0, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into this process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"cannot interrupt dead {self!r}")
        if self.sim._current is self:
            raise SimulationError("a process cannot interrupt itself")
        self._interrupts.append(Interrupt(cause))
        # Detach from whatever it's waiting on, then resume urgently.
        if self._target is not None:
            self._target.remove_callback(self._resume)
            self._target = None
            kick = Event(self.sim, name=f"interrupt({self.name})")
            kick._ok = True
            kick._value = None
            kick.callbacks.append(self._resume)
            self.sim._schedule(kick, delay=0.0, priority=URGENT)
        # If _target is None the process is already scheduled to resume; the
        # queued interrupt will be delivered on that resumption.

    # -- kernel interface ----------------------------------------------
    def _resume(self, trigger: Event) -> None:
        self.sim._current = self
        self._target = None
        event: Optional[Event] = None
        try:
            while True:
                if self._interrupts:
                    exc: BaseException = self._interrupts.pop(0)
                    event = self.gen.throw(exc)
                elif trigger._ok:
                    event = self.gen.send(trigger._value)
                else:
                    trigger._defused = True
                    event = self.gen.throw(trigger._value)
                # The generator yielded `event`; decide whether to block.
                if not isinstance(event, Event):
                    raise SimulationError(
                        f"{self!r} yielded non-event {event!r}"
                    )
                if event.sim is not self.sim:
                    raise SimulationError(
                        f"{self!r} yielded event from another simulator"
                    )
                if self._interrupts:
                    # Pending interrupt: deliver instead of blocking, but
                    # only consume the yielded event if already triggered.
                    trigger = Event(self.sim)
                    trigger._ok = True
                    trigger._value = None
                    continue
                if event.processed:
                    # Immediately continue with the value of the processed
                    # event (loop again without a context switch).
                    trigger = event
                    continue
                event.callbacks.append(self._resume)
                self._target = event
                break
        except StopIteration as stop:
            self._finish(True, stop.value)
        except BaseException as exc:  # generator died
            if isinstance(exc, SimulationError) and event is None:
                # Kernel-usage errors propagate directly.
                self.sim._current = None
                self.sim._live.discard(self)
                raise
            self._finish(False, exc)
        finally:
            self.sim._current = None

    def _finish(self, ok: bool, value: Any) -> None:
        self.sim._live.discard(self)
        self._ok = ok
        self._value = value
        if not ok and not self.callbacks:
            # Nobody is joining this process: surface the crash loudly
            # unless someone later defuses it.
            self.sim._crashed.append(self)
        self.sim._schedule(self, delay=0.0, priority=NORMAL)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        target = f" waiting on {self._target!r}" if self._target else ""
        return f"<Process {self.name!r}{target}>"


class Simulator:
    """The event loop: a priority queue of (time, priority, seq, event).

    Pending events live in a structured-array
    :class:`~repro.sim.batch.EventHeap` — columnar ``(time, key)``
    storage with an object sidecar — whose pop order is byte-for-byte
    the plain ``heapq`` order on ``(time, priority, seq)``.
    """

    def __init__(self) -> None:
        # Late import: batch.py imports Event/Simulator from this module.
        from .batch import EventHeap

        self._now: float = 0.0
        self.stats = SimStats()
        self._heap = EventHeap(stats=self.stats)
        self._seq = itertools.count()
        self._live: set[Process] = set()
        self._crashed: list[Process] = []
        self._current: Optional[Process] = None
        #: Optional tracer with a ``record(t, category, **fields)`` method.
        self.tracer: Any = None
        #: Optional :class:`~repro.obs.spans.SpanRecorder`; ``None``
        #: keeps every instrumentation point to one attribute check.
        self.spans: Any = None

    # -- time ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    # -- factories ---------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh untriggered event."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None, name: str = "") -> Timeout:
        """Create an event firing after ``delay`` seconds."""
        return Timeout(self, delay, value=value, name=name)

    def process(self, gen: ProcessGen, name: str = "") -> Process:
        """Start a new process from generator ``gen``."""
        return Process(self, gen, name=name)

    # -- scheduling --------------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if delay < 0:
            raise ScheduleError(f"negative delay {delay!r}")
        self.stats.heap_pushes += 1
        self._heap.push(self._now + delay, priority, next(self._seq), event)

    def stop(self, value: Any = None) -> None:
        """Stop :meth:`run` at the current simulated time."""
        raise StopSimulation(value)

    # -- execution -----------------------------------------------------
    def _pop_next(self) -> tuple[float, int, int, Event]:
        """Pop the next heap entry to process.

        The tie-break among entries co-scheduled at the same
        ``(time, priority)`` is the kernel's scheduling policy: here it
        is the insertion sequence number (FIFO), which makes every run
        fully deterministic.  :class:`~repro.sim.explore.ExploringSimulator`
        overrides this to pick among the ready set under a seeded RNG —
        every seed then explores one distinct legal interleaving.
        """
        return self._heap.pop()

    def step(self) -> None:
        """Process exactly one event."""
        if not self._heap:
            raise SimulationError("step() on empty event queue")
        t, _prio, _seq, event = self._pop_next()
        if t < self._now - 1e-18:  # pragma: no cover - defensive
            raise SimulationError("time went backwards")
        self._now = t
        self.stats.events_popped += 1
        callbacks, event.callbacks = event.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(event)
        if (
            event._ok is False
            and not event._defused
            and not isinstance(event, Process)
        ):
            raise event._value
        if self._crashed:
            crashed = [p for p in self._crashed if not p._defused]
            self._crashed.clear()
            if crashed:
                raise crashed[0]._value

    def run(
        self,
        until: Optional[float] = None,
        detect_deadlock: bool = True,
    ) -> float:
        """Run until the heap drains or simulated time reaches ``until``.

        Returns the final simulated time.  Raises
        :class:`~repro.sim.errors.DeadlockError` if the queue drains while
        processes remain blocked (and ``detect_deadlock`` is true).
        """
        try:
            while self._heap:
                if until is not None and self._heap.peek_time() > until:
                    self._now = until
                    return self._now
                self.step()
        except StopSimulation:
            return self._now
        if detect_deadlock and self._live:
            blocked = sorted(self._live, key=lambda p: p.name)
            raise DeadlockError(
                blocked, chains=[self._waits_chain(p) for p in blocked]
            )
        if until is not None and until > self._now:
            self._now = until
        return self._now

    def _waits_chain(self, proc: Process) -> list[str]:
        """The waits-for chain of a blocked process.

        Follows ``process -> blocking event -> owning process`` links:
        when a process is joined on another process (the event *is* the
        owning process), the chain continues through that process's own
        blocking event, until it reaches a plain event or a cycle.
        """
        chain = [proc.name]
        seen = {id(proc)}  # det: ok - membership only, never ordering
        ev: Optional[Event] = proc._target
        while ev is not None:
            chain.append(ev.name or type(ev).__name__)
            if isinstance(ev, Process) and id(ev) not in seen:
                seen.add(id(ev))
                ev = ev._target
            else:
                ev = None
        return chain

    def peek(self) -> float:
        """Time of the next scheduled event (inf when empty)."""
        return self._heap.peek_time()

    def trace(self, category: str, **fields: Any) -> None:
        """Record a trace point if a tracer is installed (cheap when not)."""
        if self.tracer is not None:
            self.tracer.record(self._now, category, **fields)

    def attach_spans(self, recorder: Any = None) -> Any:
        """Install (and return) a span recorder as ``self.spans``.

        With no argument, creates a fresh
        :class:`~repro.obs.spans.SpanRecorder`.  The recorder's
        ``stats`` is pointed at ``self.stats`` so closed spans show up
        in the ``spans`` counter.  Recording is timing-passive: the
        simulation's event order and payloads are identical with or
        without a recorder attached.
        """
        if recorder is None:
            from ..obs.spans import SpanRecorder

            recorder = SpanRecorder()
        recorder.stats = self.stats
        self.spans = recorder
        return recorder
