"""Synchronization primitives built on events.

* :class:`Signal` — reusable broadcast ("condition variable" notify-all).
* :class:`Gate` — open/closed barrier waiters pass through when open.
* :class:`Latch` — count-down latch firing once N arrivals happen.
* :class:`CyclicBarrier` — reusable N-party barrier (GPU __syncthreads()).
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from .core import Event, Simulator

__all__ = ["Signal", "Gate", "Latch", "CyclicBarrier"]


class Signal:
    """Reusable broadcast: ``fire`` wakes everyone currently waiting."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self.sim = sim
        self.name = name or "signal"
        self._waiters: List[Event] = []
        #: Number of times :meth:`fire` has been called.
        self.fired_count = 0

    @property
    def waiting(self) -> int:
        """Current number of waiters."""
        return len(self._waiters)

    def wait(self) -> Event:
        """Return a fresh event that fires at the next :meth:`fire`."""
        ev = self.sim.event(name=f"wait({self.name})")
        self._waiters.append(ev)
        return ev

    def fire(self, value: Any = None) -> int:
        """Wake all current waiters; returns how many were woken."""
        waiters, self._waiters = self._waiters, []
        for ev in waiters:
            ev.succeed(value)
        self.fired_count += 1
        return len(waiters)


class Gate:
    """A gate processes wait on while closed; passes all when open."""

    def __init__(self, sim: Simulator, open_: bool = False, name: str = "") -> None:
        self.sim = sim
        self.name = name or "gate"
        self._open = open_
        self._signal = Signal(sim, name=f"{self.name}.signal")

    @property
    def is_open(self) -> bool:
        return self._open

    def open(self, value: Any = None) -> None:
        """Open the gate, releasing all waiters."""
        self._open = True
        self._signal.fire(value)

    def close(self) -> None:
        """Close the gate; subsequent waiters block."""
        self._open = False

    def wait(self) -> Event:
        """Event that fires immediately if open, else at next open()."""
        if self._open:
            ev = self.sim.event(name=f"wait({self.name})")
            ev.succeed(None)
            return ev
        return self._signal.wait()


class Latch:
    """Count-down latch: fires its event after ``count`` arrivals."""

    def __init__(self, sim: Simulator, count: int, name: str = "") -> None:
        if count < 0:
            raise ValueError("count must be >= 0")
        self.sim = sim
        self.name = name or f"latch({count})"
        self.remaining = count
        self.done = sim.event(name=f"{self.name}.done")
        if count == 0:
            self.done.succeed(None)

    def arrive(self, n: int = 1) -> None:
        """Count down by ``n``; fires the latch at zero."""
        if self.remaining <= 0:
            raise RuntimeError(f"{self.name}: arrive() after completion")
        if n < 1:
            raise ValueError("n must be >= 1")
        self.remaining -= n
        if self.remaining < 0:
            raise RuntimeError(f"{self.name}: over-arrived")
        if self.remaining == 0:
            self.done.succeed(None)

    def wait(self) -> Event:
        """The completion event."""
        return self.done


class CyclicBarrier:
    """Reusable N-party barrier.

    Each party does ``yield barrier.arrive()``; the Nth arrival releases
    everyone and resets for the next cycle.  This models GPU
    ``__syncthreads()`` across the simulated threads of a block.
    """

    def __init__(self, sim: Simulator, parties: int, name: str = "") -> None:
        if parties < 1:
            raise ValueError("parties must be >= 1")
        self.sim = sim
        self.parties = parties
        self.name = name or f"barrier({parties})"
        self._arrived = 0
        self._gen = 0
        self._release: Event = sim.event(name=f"{self.name}.gen0")
        #: Number of completed cycles.
        self.cycles = 0

    def arrive(self) -> Event:
        """Arrive at the barrier; returned event fires when all have."""
        self._arrived += 1
        release = self._release
        if self._arrived >= self.parties:
            self._arrived = 0
            self._gen += 1
            self.cycles += 1
            self._release = self.sim.event(name=f"{self.name}.gen{self._gen}")
            release.succeed(self._gen)
        return release
