"""Lightweight simulator counters for performance diagnosis.

Every :class:`~repro.sim.core.Simulator` owns a :class:`SimStats`
(``sim.stats``).  The hot-path hooks are bare integer increments — no
branching, no allocation — so the exact simulator's event timing and
ordering are untouched.  Benchmarks print the counters next to their
timings so a perf regression (e.g. a copy-elision path silently
reverting to eager copies, or the fast path falling back to packet
simulation) is visible in the bench JSON, not just in wall-clock noise.

Counter glossary
----------------
``heap_pushes`` / ``events_popped``
    Raw event-loop volume: entries pushed onto / popped off the heap.
    The vectorized fast path shows up here first — pricing a collective
    analytically replaces thousands of pops with a handful.
``payload_copies`` / ``payload_views``
    Defensive ``np.copy`` snapshots taken at send time vs. sends that
    proved alias-safe and shipped a zero-copy view instead.
``batch_events``
    Completions delivered through an :class:`~repro.sim.batch.EventBatch`
    carrier (many logical completions drained by one heap operation).
``fastpath_collectives`` / ``fastpath_rounds``
    Collectives executed by the analytic backend, and the total number
    of schedule rounds it priced without enqueueing packets.
``fastpath_sched_cache_hits``
    Repeat data-free collectives (interned DAGs — e.g. the fence
    barrier every Jacobi iteration) whose per-rank completion offsets
    were reused instead of re-resolved.
``rma_coalesced_puts``
    Small eager RMA puts absorbed into a combined wire transfer.
``heap_merges`` / ``heap_merged_events``
    Vectorized merges of the structured-array event heap's push buffer
    into its sorted run, and the total entries those merges moved —
    ``heap_merged_events / heap_merges`` is the mean merge batch size.
``payload_adopted``
    Receives that adopted the in-flight message array outright instead
    of memcpying it into a staging buffer (schedule-internal receives
    whose sender donated a private payload).
``wire_cost_hits`` / ``wire_cost_misses``
    Interned-wire-cost cache hits vs. analytic cost-model evaluations
    in the fast-path backends (collectives and RMA pricing share the
    cache) — the hit rate is the fast path's memoization health.
``fastpath_rma_ops``
    One-sided operations priced analytically instead of simulated.
``serve_jobs`` / ``serve_backfills`` / ``serve_requests``
    Serving layer (:mod:`repro.serve`): jobs submitted to a cluster
    scheduler, admissions that jumped a blocked FIFO head (backfill),
    and open-loop requests offered to request services.
``chan_bytes``
    Payload bytes charged to fabric channels — every
    :meth:`~repro.sim.resources.BandwidthChannel.transfer` plus the
    bytes the analytic fast path accounts onto routed channels when
    :attr:`~repro.hw.topology.base.Topology.accounting` is on.  The
    per-channel link-utilization report (:mod:`repro.obs.links`) sums
    to exactly this counter.
``spans``
    Spans closed by an attached :class:`~repro.obs.spans.SpanRecorder`
    (zero when no recorder is attached — the observability layer's own
    footprint, so traced benches can report what tracing itself cost).
"""

from __future__ import annotations

__all__ = ["SimStats"]

_FIELDS = (
    "heap_pushes",
    "events_popped",
    "payload_copies",
    "payload_views",
    "payload_adopted",
    "batch_events",
    "heap_merges",
    "heap_merged_events",
    "fastpath_collectives",
    "fastpath_rounds",
    "fastpath_sched_cache_hits",
    "fastpath_rma_ops",
    "wire_cost_hits",
    "wire_cost_misses",
    "rma_coalesced_puts",
    "serve_jobs",
    "serve_backfills",
    "serve_requests",
    "chan_bytes",
    "spans",
)


class SimStats:
    """Monotonic event-loop counters (see module docstring)."""

    __slots__ = _FIELDS

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        for f in _FIELDS:
            setattr(self, f, 0)

    def as_dict(self) -> dict:
        return {f: getattr(self, f) for f in _FIELDS}

    def snapshot(self) -> dict:
        """Point-in-time copy of every counter (for :meth:`delta`)."""
        return self.as_dict()

    def delta(self, prev: dict) -> dict:
        """Per-counter difference since a :meth:`snapshot`.

        Counters absent from ``prev`` (an older snapshot taken before a
        counter existed) are treated as zero.
        """
        return {f: getattr(self, f) - prev.get(f, 0) for f in _FIELDS}

    def summary(self, compact: bool = False) -> str:
        """One-line rendering for benchmark output.

        ``compact=True`` drops zero counters — sweeps that print a
        stats line per point stay readable instead of repeating a
        screenful of irrelevant zeros.
        """
        d = self.as_dict()
        if compact:
            d = {k: v for k, v in d.items() if v}
        return " ".join(f"{k}={v}" for k, v in d.items())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SimStats({self.summary()})"
