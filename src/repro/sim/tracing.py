"""Lightweight trace recording for simulations.

A :class:`Tracer` attached to :attr:`Simulator.tracer` collects
``TraceRecord`` tuples.  It is used by tests to assert event ordering
(e.g. "the comm thread saw the GPU request only after a poll tick") and
by the benchmark harness to derive utilization statistics such as CPU
polling load (ablation A1).

:class:`RecordingControl` is the shared enabled/paused switch: both
:class:`Tracer` and the span recorder (:mod:`repro.obs.spans`) inherit
it so every observation sink answers "should I record?" the same way,
and instrumented call sites can gate on one boolean.  Recorders are
bounded by an optional ``maxlen`` ring buffer so long serving runs
cannot grow memory without bound.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

__all__ = ["RecordingControl", "TraceRecord", "Tracer"]


class RecordingControl:
    """Shared on/off switch for observation sinks.

    ``enabled`` starts ``True``; :meth:`pause`/:meth:`resume` toggle it
    (e.g. to skip a warmup phase).  Subclasses check ``self.enabled``
    at the top of their record hooks — the only cost when paused is one
    attribute load and branch.
    """

    __slots__ = ("enabled",)

    def __init__(self) -> None:
        self.enabled = True

    def pause(self) -> None:
        """Stop recording until :meth:`resume` (records are kept)."""
        self.enabled = False

    def resume(self) -> None:
        """Re-enable recording after :meth:`pause`."""
        self.enabled = True


@dataclass(frozen=True)
class TraceRecord:
    """A single trace point."""

    t: float
    category: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer(RecordingControl):
    """Collects trace records, optionally filtered by category.

    ``maxlen`` bounds the buffer: when set, only the most recent
    ``maxlen`` records are kept (older ones are silently dropped), so a
    tracer can stay attached across an arbitrarily long serving run.
    """

    __slots__ = ("records", "_categories")

    def __init__(
        self,
        categories: Optional[Iterable[str]] = None,
        maxlen: Optional[int] = None,
    ) -> None:
        super().__init__()
        self.records: Deque[TraceRecord] = deque(maxlen=maxlen)
        self._categories = set(categories) if categories is not None else None

    @property
    def maxlen(self) -> Optional[int]:
        """Ring-buffer bound (``None`` = unbounded)."""
        return self.records.maxlen

    def record(self, t: float, category: str, **fields: Any) -> None:
        """Store one record (filtered by category if a filter was given)."""
        if not self.enabled:
            return
        if self._categories is not None and category not in self._categories:
            return
        self.records.append(TraceRecord(t, category, fields))

    def select(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching ``category`` and ``predicate``."""
        out: Iterable[TraceRecord] = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for r in self.records if r.category == category)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
