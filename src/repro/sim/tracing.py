"""Lightweight trace recording for simulations.

A :class:`Tracer` attached to :attr:`Simulator.tracer` collects
``TraceRecord`` tuples.  It is used by tests to assert event ordering
(e.g. "the comm thread saw the GPU request only after a poll tick") and
by the benchmark harness to derive utilization statistics such as CPU
polling load (ablation A1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """A single trace point."""

    t: float
    category: str
    fields: Dict[str, Any]

    def __getitem__(self, key: str) -> Any:
        return self.fields[key]


class Tracer:
    """Collects trace records, optionally filtered by category."""

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._categories = set(categories) if categories is not None else None

    def record(self, t: float, category: str, **fields: Any) -> None:
        """Store one record (filtered by category if a filter was given)."""
        if self._categories is not None and category not in self._categories:
            return
        self.records.append(TraceRecord(t, category, fields))

    def select(
        self,
        category: Optional[str] = None,
        predicate: Optional[Callable[[TraceRecord], bool]] = None,
    ) -> List[TraceRecord]:
        """Return records matching ``category`` and ``predicate``."""
        out = self.records
        if category is not None:
            out = [r for r in out if r.category == category]
        if predicate is not None:
            out = [r for r in out if predicate(r)]
        return list(out)

    def count(self, category: str) -> int:
        """Number of records in ``category``."""
        return sum(1 for r in self.records if r.category == category)

    def clear(self) -> None:
        """Drop all records."""
        self.records.clear()
