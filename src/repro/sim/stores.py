"""FIFO stores: the simulated analogue of thread-safe queues.

DCGN's architecture (paper section 3.2.2) is built on "thread-safe queues
... used to control inter-thread and inter-node communication"; these
stores are their zero-cost skeleton.  Actual queue-op *costs* (lock, push,
wake-up latency) are charged by :mod:`repro.dcgn.queues`, which wraps a
:class:`Store` and adds time; keeping cost out of the primitive keeps the
kernel reusable.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional

from .core import Event, Simulator

__all__ = ["Store", "FilterStore"]


class Store:
    """An unbounded-or-bounded FIFO of Python objects.

    ``put`` and ``get`` return events.  With finite ``capacity``, ``put``
    blocks while full.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        name: str = "",
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "store"
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        self._putters: Deque[tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def getters_waiting(self) -> int:
        """Number of blocked ``get`` requests."""
        return len(self._getters)

    def put(self, item: Any) -> Event:
        """Return an event that fires once ``item`` is enqueued."""
        ev = self.sim.event(name=f"put({self.name})")
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(item)
            self._dispatch()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        """Return an event that fires with the oldest item."""
        ev = self.sim.event(name=f"get({self.name})")
        self._getters.append(ev)
        self._dispatch()
        return ev

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking pop: ``(True, item)`` or ``(False, None)``."""
        if self.items and not self._getters:
            return True, self.items.popleft()
        return False, None

    def _dispatch(self) -> None:
        while self._getters and self.items:
            ev = self._getters.popleft()
            ev.succeed(self.items.popleft())
        while self._putters and len(self.items) < self.capacity:
            pev, item = self._putters.popleft()
            self.items.append(item)
            pev.succeed(item)
            # New item may satisfy a getter queued after the putter.
            while self._getters and self.items:
                gev = self._getters.popleft()
                gev.succeed(self.items.popleft())


class FilterStore(Store):
    """A :class:`Store` whose ``get`` can select by predicate.

    Used by the MPI progress engine for tag/source matching of receives.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: float = float("inf"),
        name: str = "",
    ) -> None:
        super().__init__(sim, capacity=capacity, name=name)
        # Each getter is (event, predicate).
        self._fgetters: List[tuple[Event, Callable[[Any], bool]]] = []

    def get(self, predicate: Optional[Callable[[Any], bool]] = None) -> Event:
        pred = predicate if predicate is not None else (lambda _x: True)
        ev = self.sim.event(name=f"get({self.name})")
        self._fgetters.append((ev, pred))
        self._fdispatch()
        return ev

    def try_get(
        self, predicate: Optional[Callable[[Any], bool]] = None
    ) -> tuple[bool, Any]:
        pred = predicate if predicate is not None else (lambda _x: True)
        for i, item in enumerate(self.items):
            if pred(item):
                del self.items[i]
                return True, item
        return False, None

    def put(self, item: Any) -> Event:
        ev = self.sim.event(name=f"put({self.name})")
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed(item)
            self._fdispatch()
        else:
            self._putters.append((ev, item))
        return ev

    def _fdispatch(self) -> None:
        matched = True
        while matched:
            matched = False
            for gi, (gev, pred) in enumerate(self._fgetters):
                for ii, item in enumerate(self.items):
                    if pred(item):
                        del self.items[ii]
                        del self._fgetters[gi]
                        gev.succeed(item)
                        matched = True
                        break
                if matched:
                    break
        while self._putters and len(self.items) < self.capacity:
            pev, item = self._putters.popleft()
            self.items.append(item)
            pev.succeed(item)
            self._fdispatch()

    def _dispatch(self) -> None:  # pragma: no cover - not used by subclass
        self._fdispatch()
