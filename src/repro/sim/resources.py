"""Contended resources: counting semaphores, mutexes, and bandwidth shares.

These model the *contention* aspects of the platform: PCIe bus ownership,
limited CPU cores, GPU multiprocessors, NIC injection ports.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, Optional

from .core import Event, Simulator

__all__ = ["Resource", "Mutex", "acquire", "BandwidthChannel"]


class Resource:
    """A counting semaphore with FIFO waiters.

    Usage from a process::

        token = yield res.request()
        try:
            ...
        finally:
            res.release()
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or f"resource(cap={capacity})"
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently held units."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Number of requests waiting for a unit."""
        return len(self._waiters)

    def request(self) -> Event:
        """Return an event that fires when a unit is granted."""
        ev = self.sim.event(name=f"request({self.name})")
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def try_request(self) -> bool:
        """Non-blocking acquire; True on success."""
        if self._in_use < self.capacity and not self._waiters:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        """Release one held unit, waking the oldest waiter if any."""
        if self._in_use <= 0:
            raise RuntimeError(f"release() of idle {self.name}")
        if self._waiters:
            ev = self._waiters.popleft()
            ev.succeed(self)  # unit transfers directly to the waiter
        else:
            self._in_use -= 1


class Mutex(Resource):
    """A single-unit :class:`Resource`."""

    def __init__(self, sim: Simulator, name: str = "") -> None:
        super().__init__(sim, capacity=1, name=name or "mutex")


def acquire(res: Resource) -> Generator[Event, Any, Resource]:
    """``yield from`` helper acquiring ``res`` and returning it."""
    yield res.request()
    return res


class BandwidthChannel:
    """A serialized pipe with fixed per-transaction latency + bandwidth.

    Models PCIe links, memory-copy engines, and NIC injection: transfers
    queue FIFO behind each other (contention), each costing::

        latency + nbytes / bandwidth

    A channel may optionally allow ``lanes`` concurrent transfers (e.g.
    full-duplex links are modelled as two channels).
    """

    def __init__(
        self,
        sim: Simulator,
        latency_s: float,
        bandwidth_Bps: float,
        lanes: int = 1,
        name: str = "",
    ) -> None:
        if bandwidth_Bps <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_s < 0:
            raise ValueError("latency must be non-negative")
        self.sim = sim
        self.latency_s = latency_s
        self.bandwidth_Bps = bandwidth_Bps
        self.name = name or "channel"
        self._res = Resource(sim, capacity=lanes, name=f"{name}.lanes")
        #: Cumulative bytes moved (for utilization accounting).
        self.bytes_moved = 0
        #: Cumulative busy seconds (for utilization accounting).
        self.busy_s = 0.0

    def transfer_time(self, nbytes: int) -> float:
        """Pure service time of one transfer (without queueing)."""
        return self.latency_s + nbytes / self.bandwidth_Bps

    def transfer(self, nbytes: int) -> Generator[Event, Any, float]:
        """``yield from`` a transfer of ``nbytes``; returns service time."""
        if nbytes < 0:
            raise ValueError(f"negative transfer size {nbytes}")
        yield self._res.request()
        try:
            t = self.transfer_time(nbytes)
            yield self.sim.timeout(t)
            self.bytes_moved += nbytes
            self.busy_s += t
            self.sim.stats.chan_bytes += nbytes
            spans = self.sim.spans
            if spans is not None:
                now = self.sim._now
                spans.complete(now - t, now, "xfer", "wire", self.name,
                               None, None, {"nbytes": nbytes})
            return t
        finally:
            self._res.release()

    def occupy(self, duration_s: float) -> Generator[Event, Any, float]:
        """Hold a lane for ``duration_s`` (control transactions, probes)."""
        if duration_s < 0:
            raise ValueError(f"negative duration {duration_s}")
        yield self._res.request()
        try:
            yield self.sim.timeout(duration_s)
            self.busy_s += duration_s
            return duration_s
        finally:
            self._res.release()
