"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any, Optional, Sequence


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class ScheduleError(SimulationError):
    """Raised on illegal scheduling operations (negative delay, re-trigger)."""


class StopSimulation(Exception):
    """Internal control-flow exception used to stop :meth:`Simulator.run`.

    Raised by :meth:`repro.sim.core.Simulator.stop`; callers never see it
    because ``run`` catches it.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process.

    Parameters
    ----------
    cause:
        Arbitrary payload describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Carries the list of blocked processes and a human-readable description
    of what each was waiting on, which makes tests of deliberately
    deadlocking configurations (e.g. the paper's block-scheduling deadlock,
    section 3.2.4) precise.

    ``chains`` (when the kernel supplies them) are per-process *waits-for*
    chains: each is the list ``[process name, blocking event name, owning
    process name, its blocking event name, ...]`` obtained by following
    join targets — a caught deadlock names the cycle without needing a
    replay under a debugger.
    """

    def __init__(
        self,
        blocked: Sequence[Any],
        chains: Optional[Sequence[Sequence[str]]] = None,
    ) -> None:
        self.blocked = list(blocked)
        self.chains = [list(c) for c in chains] if chains is not None else []
        lines = ", ".join(str(p) for p in self.blocked)
        msg = (
            f"deadlock: event queue empty with {len(self.blocked)} "
            f"blocked process(es): {lines}"
        )
        if self.chains:
            msg += "\nwaits-for:\n" + "\n".join(
                "  " + " -> ".join(chain) for chain in self.chains
            )
        super().__init__(msg)


class LivelockError(SimulationError):
    """The simulation kept processing events without advancing time.

    Raised by :class:`~repro.sim.explore.ExploringSimulator` when more
    than ``window`` consecutive events fire at one simulated instant —
    the signature of a spin loop (processes re-scheduling zero-delay
    events forever) that a drained-heap deadlock check can never see.
    """

    def __init__(self, at: float, window: int, spinning: Sequence[str]) -> None:
        self.at = float(at)
        self.window = int(window)
        self.spinning = list(spinning)
        names = ", ".join(self.spinning) if self.spinning else "<no processes>"
        super().__init__(
            f"livelock: {window} events processed at t={at:.9f} without "
            f"simulated-time progress; live processes: {names}"
        )
