"""Exception types for the discrete-event simulation kernel."""

from __future__ import annotations

from typing import Any, Sequence


class SimulationError(Exception):
    """Base class for all simulation-kernel errors."""


class ScheduleError(SimulationError):
    """Raised on illegal scheduling operations (negative delay, re-trigger)."""


class StopSimulation(Exception):
    """Internal control-flow exception used to stop :meth:`Simulator.run`.

    Raised by :meth:`repro.sim.core.Simulator.stop`; callers never see it
    because ``run`` catches it.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Thrown into a process that is interrupted by another process.

    Parameters
    ----------
    cause:
        Arbitrary payload describing why the interrupt happened.
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Interrupt(cause={self.cause!r})"


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked.

    Carries the list of blocked processes and a human-readable description
    of what each was waiting on, which makes tests of deliberately
    deadlocking configurations (e.g. the paper's block-scheduling deadlock,
    section 3.2.4) precise.
    """

    def __init__(self, blocked: Sequence[Any]) -> None:
        self.blocked = list(blocked)
        lines = ", ".join(str(p) for p in self.blocked)
        super().__init__(
            f"deadlock: event queue empty with {len(self.blocked)} "
            f"blocked process(es): {lines}"
        )
