"""Discrete-event simulation kernel for the DCGN reproduction.

Public surface::

    from repro.sim import Simulator, us, ms
    sim = Simulator()

    def proc(sim):
        yield sim.timeout(us(5))
        return 42

    p = sim.process(proc(sim))
    sim.run()
    assert p.value == 42
"""

from .core import (
    LOW,
    NORMAL,
    PENDING,
    URGENT,
    Event,
    Process,
    Simulator,
    Timeout,
    ms,
    us,
)
from .errors import (
    DeadlockError,
    Interrupt,
    LivelockError,
    ScheduleError,
    SimulationError,
)
from .batch import EventBatch
from .explore import ExploringSimulator, ScheduleChoice
from .primitives import AllOf, AnyOf, all_of, any_of
from .stats import SimStats
from .resources import BandwidthChannel, Mutex, Resource, acquire
from .rng import RngStreams, stable_hash
from .stores import FilterStore, Store
from .sync import CyclicBarrier, Gate, Latch, Signal
from .tracing import TraceRecord, Tracer

__all__ = [
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "PENDING",
    "URGENT",
    "NORMAL",
    "LOW",
    "us",
    "ms",
    "SimulationError",
    "ScheduleError",
    "Interrupt",
    "DeadlockError",
    "LivelockError",
    "ExploringSimulator",
    "ScheduleChoice",
    "SimStats",
    "EventBatch",
    "AnyOf",
    "AllOf",
    "any_of",
    "all_of",
    "Resource",
    "Mutex",
    "acquire",
    "BandwidthChannel",
    "Store",
    "FilterStore",
    "Signal",
    "Gate",
    "Latch",
    "CyclicBarrier",
    "Tracer",
    "TraceRecord",
    "RngStreams",
    "stable_hash",
]
