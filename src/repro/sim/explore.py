"""Schedule exploration: seeded random tie-break over the ready set.

The base :class:`~repro.sim.core.Simulator` breaks event-heap ties by
insertion order (FIFO), so every run follows exactly one interleaving —
fine for timing studies, useless for falsifying concurrency logic: the
passive-target lock grant queues, PSCW partial-group sync and comm-thread
completers in this codebase have corner cases that only *other* legal
interleavings reach.

:class:`ExploringSimulator` makes the tie-break a scheduling decision.
All heap entries co-scheduled at the head ``(time, priority)`` form the
**ready set**; one is picked under a seeded :class:`random.Random`.  Two
properties follow directly:

* every seed is a *legal* interleaving — only same-instant,
  same-priority events are permuted, so causality and simulated time are
  untouched;
* every seed is *replayable* — the RNG is the only source of choice, so
  the same seed always yields the identical schedule (and the identical
  :attr:`~ExploringSimulator.schedule_trace`).

The model-checking harness in :mod:`repro.check` sweeps seeds and
classifies outcomes; this module is deliberately policy-free.

Livelock detection rides along: a deadlock (drained heap with blocked
processes) is already caught by the base kernel, but a spin loop that
keeps re-scheduling zero-delay events never drains the heap.  When more
than ``livelock_window`` consecutive events fire without simulated time
advancing, :class:`~repro.sim.errors.LivelockError` is raised.
"""

from __future__ import annotations

import random
from typing import List, NamedTuple, Optional, Tuple

from .core import Event, Simulator
from .errors import LivelockError

__all__ = ["ExploringSimulator", "ScheduleChoice"]


class ScheduleChoice(NamedTuple):
    """One recorded scheduling decision (a ready set of size >= 2)."""

    #: Simulated time of the ready set.
    time: float
    #: Scheduling priority band of the ready set.
    priority: int
    #: Names of the co-scheduled events, in FIFO (sequence) order.
    ready: Tuple[str, ...]
    #: Index into ``ready`` of the event that was picked.
    picked: int


class ExploringSimulator(Simulator):
    """A :class:`Simulator` whose same-instant tie-break is a seeded RNG.

    Parameters
    ----------
    seed:
        Root of all scheduling choices.  Equal seeds reproduce the
        identical schedule; distinct seeds explore distinct
        interleavings (when the workload has any same-instant
        concurrency at all).
    livelock_window:
        Raise :class:`~repro.sim.errors.LivelockError` after this many
        consecutive events at one simulated instant (``None`` disables —
        the default, since legitimate wide barriers process many
        same-time events).
    capture_trace:
        Record every decision (ready set + pick) in
        :attr:`schedule_trace`.  Bounded by ``max_trace`` entries so
        pathological runs stay in memory; :attr:`decisions` always
        counts all of them.
    """

    def __init__(
        self,
        seed: int = 0,
        livelock_window: Optional[int] = None,
        capture_trace: bool = True,
        max_trace: int = 100_000,
    ) -> None:
        super().__init__()
        self.seed = int(seed)
        self._rng = random.Random(self.seed)
        self.livelock_window = livelock_window
        self.capture_trace = capture_trace
        self.max_trace = int(max_trace)
        #: Recorded scheduling decisions (ready sets of size >= 2).
        self.schedule_trace: List[ScheduleChoice] = []
        #: Total scheduling decisions taken (even when not captured).
        self.decisions = 0
        #: Total events processed.
        self.steps = 0
        self._stagnant = 0

    # -- the exploring tie-break ----------------------------------------
    def _pop_next(self) -> tuple[float, int, int, Event]:
        heap = self._heap
        first = heap.pop()
        if not heap.peek_matches(first[0], first[1]):
            return first  # singleton ready set: no choice to make
        # Gather the full ready set: every entry co-scheduled at the
        # head (time, priority).  Entries keep their sequence numbers,
        # so the ones pushed back preserve their relative FIFO order.
        ready = [first]
        while heap.peek_matches(first[0], first[1]):
            ready.append(heap.pop())
        k = self._rng.randrange(len(ready))
        self.decisions += 1
        if self.capture_trace and len(self.schedule_trace) < self.max_trace:
            self.schedule_trace.append(
                ScheduleChoice(
                    time=first[0],
                    priority=first[1],
                    ready=tuple(
                        e[3].name or type(e[3]).__name__ for e in ready
                    ),
                    picked=k,
                )
            )
        chosen = ready.pop(k)
        for entry in ready:
            heap.push_entry(entry)
        return chosen

    # -- livelock detection ---------------------------------------------
    def step(self) -> None:
        before = self._now
        super().step()
        self.steps += 1
        if self.livelock_window is None:
            return
        if self._now > before:
            self._stagnant = 0
            return
        self._stagnant += 1
        if self._stagnant >= self.livelock_window:
            spinning = sorted(p.name for p in self._live)
            raise LivelockError(self._now, self.livelock_window, spinning)

    # -- introspection ---------------------------------------------------
    def trace_signature(self) -> Tuple[Tuple[float, int, int], ...]:
        """A compact, comparable fingerprint of the schedule so far.

        ``(time, priority, picked)`` per decision — enough to prove two
        runs followed the identical (or a different) interleaving
        without holding every event name.
        """
        return tuple(
            (c.time, c.priority, c.picked) for c in self.schedule_trace
        )
