"""Deterministic per-component random streams.

Every stochastic element of the simulation (timing jitter on device
operations, randomized benchmark payloads) draws from a *named* stream so
that adding a new consumer never perturbs existing ones.  Streams are
derived from a root seed with a stable hash of the name, making whole
cluster runs reproducible from a single integer — which is exactly how we
reproduce "two runs of the Mandelbrot generator differ" (paper Figure 5):
same workload, different root seed.
"""

from __future__ import annotations

import zlib
from typing import Dict

import numpy as np

__all__ = ["RngStreams", "stable_hash"]


def stable_hash(name: str) -> int:
    """A platform-stable 32-bit hash of ``name`` (CRC-32)."""
    return zlib.crc32(name.encode("utf-8")) & 0xFFFFFFFF


class RngStreams:
    """A family of named, independent :class:`numpy.random.Generator` s."""

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            ss = np.random.SeedSequence(
                entropy=self.seed, spawn_key=(stable_hash(name),)
            )
            gen = np.random.default_rng(ss)
            self._streams[name] = gen
        return gen

    def jitter(self, name: str, scale_s: float) -> float:
        """A non-negative timing jitter sample with mean ``scale_s``.

        Exponentially distributed: models scheduler / DMA-engine timing
        noise.  Returns 0.0 when ``scale_s`` is 0 (jitter disabled).
        """
        if scale_s <= 0.0:
            return 0.0
        return float(self.stream(name).exponential(scale_s))
