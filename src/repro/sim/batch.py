"""Batched event completion and the structured-array event heap.

Two complementary attacks on per-event Python overhead live here:

* :class:`EventBatch` — many logical completions, one heap operation.
  The analytic fast path uses it: a 1024-rank collective has one
  completion *per rank*, but they cluster on a handful of distinct
  completion times.  The completions are collected into a numpy
  structured array, grouped by unique time, and each distinct time gets
  exactly **one** carrier :class:`~repro.sim.core.Event` on the heap.
  When the carrier pops, its callback marks every member event
  triggered-and-processed and runs the members' callbacks inline, so N
  completions cost ``unique_times`` heap operations instead of N.

  Members delivered this way are indistinguishable from normally
  processed events to waiters: ``triggered``/``processed``/``ok``/
  ``value`` all read correctly, and callbacks run from the main loop at
  the member's exact simulated time (carriers are scheduled with NORMAL
  priority, like plain ``succeed()``).

* :class:`EventHeap` — the *exact* engine's pending-event store,
  replacing the plain ``heapq`` of ``(time, priority, seq, event)``
  tuples.  It is log-structured: fresh pushes land in a small binary
  heap of those same 4-tuples (so the shallow-heap fast path costs
  exactly what the plain heap cost), and once the buffer passes a
  threshold it is merged with the surviving sorted run by one
  vectorized ``np.lexsort`` over parallel ``float64``/``int64`` columns
  (``priority << 48 | seq`` packed into one key, so run ordering is a
  two-scalar compare that never reaches the event); the sorted columns
  are rematerialized as flat Python lists so head reads never box a
  numpy scalar.  Pops take the smaller of the run head
  and the buffer head, so the order is the total order on
  ``(time, priority, seq)`` — byte-for-byte the order the plain heap
  produced, which keeps the exact engine byte-stable and keeps
  :meth:`~repro.sim.core.Simulator._pop_next` (the pluggable tie-break
  the :class:`~repro.sim.explore.ExploringSimulator` overrides) exactly
  as expressive as before via :meth:`EventHeap.peek_matches` /
  :meth:`EventHeap.push_entry`.
"""

from __future__ import annotations

import heapq
from typing import Any, List, Tuple

import numpy as np

from .core import NORMAL, PENDING, Event, Simulator
from .errors import ScheduleError

__all__ = ["EventBatch", "EventHeap"]

#: ``key = priority << _KEY_SHIFT | seq`` — one comparison covers the
#: (priority, seq) tie-break.  48 bits of sequence space is ~2.8e14
#: events, far beyond any simulated run.
_KEY_SHIFT = 48
_KEY_MASK = (1 << _KEY_SHIFT) - 1

#: Minimum buffered pushes before a vectorized merge into the sorted
#: run.  Merges are *geometric*: the buffer must also outgrow the
#: surviving run tail, so every entry is rewritten O(log(N/threshold))
#: times over its life instead of once per 1024 pushes — without this,
#: deep heaps (256–1024-rank exact runs) would pay quadratic rewrite
#: volume.
_MERGE_THRESHOLD = 1024


class EventHeap:
    """Columnar pending-event store (see module docstring).

    The public entry shape is the kernel's ``(time, priority, seq,
    event)`` tuple.  Entries live either in ``_pend`` — a small
    ``heapq`` of those very tuples, so the shallow-heap fast path costs
    exactly what the plain heap cost — or in the sorted run
    ``_run_t``/``_run_k``/``_run_e`` consumed from ``_head``, where
    ``k`` packs ``priority << 48 | seq`` so one scalar pair compare
    orders run entries against the pend head.
    """

    __slots__ = (
        "_pend", "_run_t", "_run_k", "_run_e", "_head", "_run_len", "stats"
    )

    def __init__(self, stats=None) -> None:
        self._pend: List[Tuple[float, int, int, Event]] = []
        # The sorted run: produced columnar (one vectorized lexsort),
        # then held as plain lists so per-pop head reads are native
        # float/int indexing with no numpy-scalar boxing.
        self._run_t: List[float] = []
        self._run_k: List[int] = []
        self._run_e: List[Any] = []
        self._head = 0
        self._run_len = 0
        self.stats = stats

    def __len__(self) -> int:
        return len(self._pend) + (self._run_len - self._head)

    def __bool__(self) -> bool:
        return bool(self._pend) or self._head < self._run_len

    # -- insertion -----------------------------------------------------
    def push(self, time: float, priority: int, seq: int, event: Event) -> None:
        pend = self._pend
        heapq.heappush(pend, (time, priority, seq, event))
        if len(pend) >= _MERGE_THRESHOLD and len(pend) >= (
            self._run_len - self._head
        ):
            self._merge()

    def push_entry(self, entry: Tuple[float, int, int, Event]) -> None:
        """Re-insert an entry previously returned by :meth:`pop` (the
        exploring tie-break pushes non-chosen ready entries back)."""
        heapq.heappush(self._pend, entry)

    def _merge(self) -> None:
        """Fold the push buffer into the sorted run (vectorized)."""
        pend = self._pend
        head = self._head
        n = self._run_len - head + len(pend)
        t = np.array(
            self._run_t[head:] + [e[0] for e in pend], dtype=np.float64
        )
        k = np.array(
            self._run_k[head:]
            + [(e[1] << _KEY_SHIFT) | e[2] for e in pend],
            dtype=np.int64,
        )
        events = self._run_e[head:] + [e[3] for e in pend]
        pend.clear()
        # Keys are unique (seq is), so (time, key) is a total order and
        # sort stability is irrelevant: the result is the exact heapq
        # pop order regardless.
        order = np.lexsort((k, t))
        self._run_t = t[order].tolist()
        self._run_k = k[order].tolist()
        self._run_e = [events[i] for i in order.tolist()]
        self._head = 0
        self._run_len = n
        if self.stats is not None:
            self.stats.heap_merges += 1
            self.stats.heap_merged_events += n

    # -- consumption ---------------------------------------------------
    def pop(self) -> Tuple[float, int, int, Event]:
        """Remove and return the minimum entry as ``(time, priority,
        seq, event)`` — the plain heap's exact pop order."""
        head = self._head
        if head < self._run_len:
            pend = self._pend
            rt = self._run_t[head]
            rk = self._run_k[head]
            if not pend or (rt, rk) <= (
                pend[0][0], (pend[0][1] << _KEY_SHIFT) | pend[0][2]
            ):
                self._head = head + 1
                ev = self._run_e[head]
                self._run_e[head] = None  # drop the reference
                return (rt, rk >> _KEY_SHIFT, rk & _KEY_MASK, ev)
        return heapq.heappop(self._pend)

    def peek_time(self) -> float:
        """Time of the minimum entry (``inf`` when empty)."""
        pend = self._pend
        head = self._head
        if head < self._run_len:
            rt = self._run_t[head]
            if pend and pend[0][0] < rt:
                return pend[0][0]
            return rt
        return pend[0][0] if pend else float("inf")

    def peek_matches(self, time: float, priority: int) -> bool:
        """True when the minimum entry is co-scheduled at exactly
        ``(time, priority)`` — the exploring simulator's ready-set
        membership test."""
        pend = self._pend
        head = self._head
        if head < self._run_len:
            rt = self._run_t[head]
            rk = self._run_k[head]
            if pend and (
                pend[0][0], (pend[0][1] << _KEY_SHIFT) | pend[0][2]
            ) <= (rt, rk):
                return pend[0][0] == time and pend[0][1] == priority
            return rt == time and (rk >> _KEY_SHIFT) == priority
        if pend:
            return pend[0][0] == time and pend[0][1] == priority
        return False

#: Structured record for one pending completion: absolute fire time and
#: an index into the side list of (event, value) pairs.  Kept as a
#: numpy array so grouping by time is a vectorized sort, not Python
#: tuple churn.
_REC_DTYPE = np.dtype([("time", np.float64), ("slot", np.int64)])


class EventBatch:
    """Accumulates ``(time, event, value)`` completions, then commits
    them with one heap push per distinct completion time."""

    def __init__(self, sim: Simulator, name: str = "batch") -> None:
        self.sim = sim
        self.name = name
        self._items: List[Tuple[float, Event, Any]] = []

    def add(self, time: float, event: Event, value: Any = None) -> None:
        """Schedule ``event`` to complete successfully at absolute
        simulated ``time`` (must be >= now)."""
        if event.triggered:
            raise ScheduleError(f"{event!r} already triggered")
        if time < self.sim.now:
            raise ScheduleError(
                f"batch completion in the past: {time} < {self.sim.now}"
            )
        self._items.append((time, event, value))

    def __len__(self) -> int:
        return len(self._items)

    def commit(self) -> int:
        """Flush accumulated completions; returns the number of carrier
        events pushed (== number of distinct completion times)."""
        items = self._items
        if not items:
            return 0
        self._items = []
        recs = np.empty(len(items), dtype=_REC_DTYPE)
        recs["time"] = [it[0] for it in items]
        recs["slot"] = np.arange(len(items))
        # Stable sort: members at one time fire in insertion order, the
        # same FIFO tie-break the plain heap gives same-time events.
        order = np.argsort(recs, order=("time", "slot"), kind="stable")
        recs = recs[order]
        times = recs["time"]
        # Boundaries of runs of equal time.
        starts = np.flatnonzero(np.concatenate(([True], times[1:] != times[:-1])))
        ends = np.concatenate((starts[1:], [len(recs)]))
        sim = self.sim
        for lo, hi in zip(starts, ends):
            t = float(times[lo])
            members = [items[int(s)] for s in recs["slot"][lo:hi]]
            carrier = Event(sim, name=f"{self.name}@{t:g}")
            carrier._ok = True
            carrier._value = None
            carrier.callbacks.append(_make_drain(sim, members))
            sim._schedule(carrier, delay=t - sim.now, priority=NORMAL)
        return len(starts)


def _make_drain(sim: Simulator, members: List[Tuple[float, Event, Any]]):
    def drain(_carrier: Event) -> None:
        stats = sim.stats
        for _t, ev, value in members:
            if ev._value is not PENDING:  # pragma: no cover - defensive
                raise ScheduleError(f"batched {ev!r} triggered elsewhere")
            ev._ok = True
            ev._value = value
            stats.batch_events += 1
            callbacks, ev.callbacks = ev.callbacks, None
            if callbacks:
                for fn in callbacks:
                    fn(ev)

    return drain
