"""Batched event completion: many logical events, one heap operation.

The exact simulator pays one heap push + pop per completing event.  For
the analytic fast path that cost dominates: a 1024-rank collective has
one completion *per rank*, but they cluster on a handful of distinct
completion times.  :class:`EventBatch` exploits the clustering — the
completions are collected into a numpy structured array, grouped by
unique time, and each distinct time gets exactly **one** carrier
:class:`~repro.sim.core.Event` on the heap.  When the carrier pops, its
callback marks every member event triggered-and-processed and runs the
members' callbacks inline, so N completions cost ``unique_times`` heap
operations instead of N.

Members delivered this way are indistinguishable from normally
processed events to waiters: ``triggered``/``processed``/``ok``/
``value`` all read correctly, and callbacks run from the main loop at
the member's exact simulated time (carriers are scheduled with NORMAL
priority, like plain ``succeed()``).
"""

from __future__ import annotations

from typing import Any, List, Tuple

import numpy as np

from .core import NORMAL, PENDING, Event, Simulator
from .errors import ScheduleError

__all__ = ["EventBatch"]

#: Structured record for one pending completion: absolute fire time and
#: an index into the side list of (event, value) pairs.  Kept as a
#: numpy array so grouping by time is a vectorized sort, not Python
#: tuple churn.
_REC_DTYPE = np.dtype([("time", np.float64), ("slot", np.int64)])


class EventBatch:
    """Accumulates ``(time, event, value)`` completions, then commits
    them with one heap push per distinct completion time."""

    def __init__(self, sim: Simulator, name: str = "batch") -> None:
        self.sim = sim
        self.name = name
        self._items: List[Tuple[float, Event, Any]] = []

    def add(self, time: float, event: Event, value: Any = None) -> None:
        """Schedule ``event`` to complete successfully at absolute
        simulated ``time`` (must be >= now)."""
        if event.triggered:
            raise ScheduleError(f"{event!r} already triggered")
        if time < self.sim.now:
            raise ScheduleError(
                f"batch completion in the past: {time} < {self.sim.now}"
            )
        self._items.append((time, event, value))

    def __len__(self) -> int:
        return len(self._items)

    def commit(self) -> int:
        """Flush accumulated completions; returns the number of carrier
        events pushed (== number of distinct completion times)."""
        items = self._items
        if not items:
            return 0
        self._items = []
        recs = np.empty(len(items), dtype=_REC_DTYPE)
        recs["time"] = [it[0] for it in items]
        recs["slot"] = np.arange(len(items))
        # Stable sort: members at one time fire in insertion order, the
        # same FIFO tie-break the plain heap gives same-time events.
        order = np.argsort(recs, order=("time", "slot"), kind="stable")
        recs = recs[order]
        times = recs["time"]
        # Boundaries of runs of equal time.
        starts = np.flatnonzero(np.concatenate(([True], times[1:] != times[:-1])))
        ends = np.concatenate((starts[1:], [len(recs)]))
        sim = self.sim
        for lo, hi in zip(starts, ends):
            t = float(times[lo])
            members = [items[int(s)] for s in recs["slot"][lo:hi]]
            carrier = Event(sim, name=f"{self.name}@{t:g}")
            carrier._ok = True
            carrier._value = None
            carrier.callbacks.append(_make_drain(sim, members))
            sim._schedule(carrier, delay=t - sim.now, priority=NORMAL)
        return len(starts)


def _make_drain(sim: Simulator, members: List[Tuple[float, Event, Any]]):
    def drain(_carrier: Event) -> None:
        stats = sim.stats
        for _t, ev, value in members:
            if ev._value is not PENDING:  # pragma: no cover - defensive
                raise ScheduleError(f"batched {ev!r} triggered elsewhere")
            ev._ok = True
            ev._value = value
            stats.batch_events += 1
            callbacks, ev.callbacks = ev.callbacks, None
            if callbacks:
                for fn in callbacks:
                    fn(ev)

    return drain
