"""Errors of the serving layer."""

from __future__ import annotations

__all__ = ["ServeError", "SchedulerError", "PlacementError"]


class ServeError(Exception):
    """Base class for serving-layer errors."""


class SchedulerError(ServeError):
    """Invalid scheduler operation (bad submit, illegal cancel, a
    reservation conflict — the latter indicates a scheduler bug)."""


class PlacementError(ServeError):
    """A placement request that cannot be satisfied (unknown policy,
    more nodes requested than are free)."""
