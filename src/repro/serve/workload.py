"""Open-loop request workloads and per-request latency tracing.

Serving studies live or die on the load model: a *closed* loop (next
request sent when the previous answer returns) self-throttles and hides
saturation, so this module is strictly **open-loop** — arrival times
are drawn up front from a seeded Poisson process and requests are
injected at those instants no matter how far behind the service is.
Above the capacity knee the queue grows and the tail latency explodes;
that amplification is exactly what makes placement quality visible in
p99 (see ``benchmarks/bench_serving.py``).

Pieces:

* :func:`open_loop_arrivals` — the seeded exponential-gap schedule;
* :func:`percentile` — linear-interpolation percentiles (the
  convention ``numpy.percentile`` defaults to), shared with
  ``benchmarks/common.py``;
* :class:`RequestLog` — per-request arrival/start/done stamps and the
  latency/goodput summary;
* :class:`OpenLoopDriver` — the injection process: feeds any object
  with ``submit(req)``/``close()`` (e.g.
  :class:`repro.apps.tile_service.TileService`) at the scheduled
  instants.
"""

from __future__ import annotations

import random
from typing import Any, Dict, List, Optional, Sequence

from ..sim.core import Event, Simulator

__all__ = [
    "open_loop_arrivals",
    "percentile",
    "Request",
    "RequestLog",
    "OpenLoopDriver",
]


def open_loop_arrivals(
    rate_hz: float,
    n_requests: int,
    seed: int = 0,
    start: float = 0.0,
) -> List[float]:
    """``n_requests`` Poisson arrival times at ``rate_hz`` from ``start``.

    Gaps are i.i.d. exponential with mean ``1/rate_hz``, drawn from a
    private seeded generator so the schedule is deterministic and — key
    for A/B placement comparisons — *identical* across policies run
    with the same seed.
    """
    if rate_hz <= 0.0:
        raise ValueError(f"rate_hz must be > 0, got {rate_hz}")
    if n_requests < 1:
        raise ValueError(f"n_requests must be >= 1, got {n_requests}")
    rng = random.Random(seed)
    t = start
    out: List[float] = []
    for _ in range(n_requests):
        t += rng.expovariate(rate_hz)
        out.append(t)
    return out


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0..100) with linear interpolation."""
    if not values:
        raise ValueError("percentile of an empty sequence")
    if not (0.0 <= q <= 100.0):
        raise ValueError(f"percentile q out of range: {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (q / 100.0) * (len(ordered) - 1)
    lo = int(pos)
    hi = min(lo + 1, len(ordered) - 1)
    frac = pos - lo
    return ordered[lo] * (1.0 - frac) + ordered[hi] * frac


class Request:
    """One request's timeline.  ``latency`` is arrival→completion —
    queueing wait included, which is the number a user experiences."""

    __slots__ = ("req_id", "payload", "arrival_t", "start_t", "done_t")

    def __init__(
        self, req_id: int, arrival_t: float, payload: Any = None
    ) -> None:
        self.req_id = req_id
        self.payload = payload
        self.arrival_t = arrival_t
        self.start_t: Optional[float] = None
        self.done_t: Optional[float] = None

    @property
    def latency(self) -> Optional[float]:
        if self.done_t is None:
            return None
        return self.done_t - self.arrival_t

    @property
    def service_time(self) -> Optional[float]:
        if self.done_t is None or self.start_t is None:
            return None
        return self.done_t - self.start_t


class RequestLog:
    """Arrival/start/completion stamps for a stream of requests."""

    def __init__(self, sim: Simulator, name: str = "requests") -> None:
        self.sim = sim
        #: Span track this log's request spans land on.
        self.name = name
        self.requests: List[Request] = []
        self.n_dropped = 0

    # -- recording (called by services/drivers) ----------------------------
    def arrived(self, req_id: int, payload: Any = None) -> Request:
        req = Request(req_id, self.sim.now, payload)
        self.requests.append(req)
        self.sim.stats.serve_requests += 1
        return req

    def started(self, req: Request) -> None:
        req.start_t = self.sim.now

    def completed(self, req: Request) -> None:
        req.done_t = self.sim.now
        spans = self.sim.spans
        if spans is not None:
            # Retrospective spans straight from the request stamps, so
            # trace and log can never disagree.
            if req.start_t is not None:
                spans.complete(
                    req.arrival_t, req.start_t,
                    f"req{req.req_id}.wait", "serve.wait", self.name,
                    attrs={"req_id": req.req_id},
                )
            start = (
                req.start_t if req.start_t is not None else req.arrival_t
            )
            spans.complete(
                start, req.done_t,
                f"req{req.req_id}", "serve.request", self.name,
                attrs={"req_id": req.req_id},
            )

    def dropped(self, req: Request) -> None:
        self.n_dropped += 1

    # -- analysis ----------------------------------------------------------
    def latencies(self) -> List[float]:
        """Completed requests' arrival→done latencies, arrival order."""
        return [
            r.latency for r in self.requests if r.done_t is not None
        ]

    def summary(self) -> Dict[str, float]:
        """Latency percentiles + goodput over the observed span.

        ``goodput_rps`` counts *completed* requests over first-arrival→
        last-completion — at saturation it converges to the service
        capacity while offered load keeps climbing, which is the gap
        the serving benchmark plots.
        """
        lats = self.latencies()
        n_offered = len(self.requests)
        out: Dict[str, float] = {
            "n_offered": float(n_offered),
            "n_completed": float(len(lats)),
            "n_dropped": float(self.n_dropped),
        }
        if not lats:
            return out
        first = min(r.arrival_t for r in self.requests)
        last = max(
            r.done_t for r in self.requests if r.done_t is not None
        )
        span = max(last - first, 1e-12)
        out.update(
            {
                "p50_s": percentile(lats, 50.0),
                "p95_s": percentile(lats, 95.0),
                "p99_s": percentile(lats, 99.0),
                "mean_s": sum(lats) / len(lats),
                "max_s": max(lats),
                "goodput_rps": len(lats) / span,
                "span_s": span,
            }
        )
        return out


class OpenLoopDriver:
    """Injects requests into a service at fixed arrival instants.

    ``service`` needs ``submit(req_id)`` and ``close()``; the service
    owns the :class:`RequestLog` stamps.  The driver never waits for
    completions — that is the whole point.
    """

    def __init__(
        self,
        sim: Simulator,
        service: Any,
        arrivals: Sequence[float],
        name: str = "openloop",
    ) -> None:
        self.sim = sim
        self.service = service
        self.arrivals = list(arrivals)
        self.name = name
        self.proc: Optional[Any] = None

    def start(self) -> None:
        self.proc = self.sim.process(
            self._run(), name=f"serve.drive.{self.name}"
        )

    def _run(self):
        for i, t in enumerate(self.arrivals):
            if t > self.sim.now:
                yield self.sim.timeout(t - self.sim.now)
            self.service.submit(i)
        self.service.close()
