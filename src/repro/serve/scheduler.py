"""Cluster scheduler: concurrent jobs carved out of one shared fabric.

Everything before this layer ran one job on a dedicated cluster.  The
:class:`ClusterScheduler` turns the cluster into a *serving substrate*:
it owns a single **fabric communicator** — one MPI rank per node over
the whole :class:`~repro.hw.cluster.Cluster` — and every admitted job
gets a sub-communicator (:meth:`Communicator.create`, PR 4) over just
its nodes.  That split does exactly what multi-tenancy needs:

* **tag-space isolation** — each derived communicator has its own
  matching stores and tag space, so concurrent jobs cannot steal each
  other's messages;
* **real congestion** — every sub-communicator still routes through the
  shared :class:`~repro.hw.topology.base.Topology` channels, so two
  jobs whose placements share a fat-tree uplink genuinely queue against
  each other (under the exact backend; the analytic backend prices each
  transfer's routed path uncontended);
* **per-placement tuning** — the sub-communicator autotunes from the
  sub-fabric its nodes span, so a fragmented placement falls back to
  hierarchical schedules on its own.

Admission is **FIFO with aggressive backfill**: the queue head is
placed as soon as it fits; when it does not fit, later jobs that *do*
fit start immediately.  Backfill here takes no reservation for the
blocked head (EASY-style reservations need runtime estimates, which
jobs do not declare) — a stream of small jobs can therefore delay a
large head indefinitely; the model checker's contention scenarios pin
the safety properties, and preemption/reservations are the ROADMAP
follow-on.

Job lifecycle::

    submit -> queued -> placing -> running -> done
                  \\         \\
                   cancelled  cancelled

``placing`` models launch overhead — the pPython performance study's
observation that job start cost scales with the process count is why
the delay has a per-node term — and is the window where a cancel can
still win the race against the launch.

The scheduler is **callback-driven**: admission runs synchronously
inside ``submit``/cancel/completion, and only placement delays and job
watchers are simulated processes.  There is no perpetually-blocked
scheduler loop, so an idle scheduler never trips the simulator's
deadlock detector and the whole thing composes with
:class:`~repro.sim.explore.ExploringSimulator` sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Sequence

from ..hw.cluster import Cluster
from ..mpi.communicator import Communicator
from ..mpi.group import Group
from ..sim.core import Event, Process, Simulator, us
from .errors import PlacementError, SchedulerError
from .placement import POLICIES, select_nodes

__all__ = [
    "JobSpec",
    "Job",
    "ClusterScheduler",
    "QUEUED",
    "PLACING",
    "RUNNING",
    "DONE",
    "CANCELLED",
]

#: Job lifecycle states.
QUEUED = "queued"
PLACING = "placing"
RUNNING = "running"
DONE = "done"
CANCELLED = "cancelled"

#: States a job never leaves.
TERMINAL = frozenset({DONE, CANCELLED})


@dataclass
class JobSpec:
    """What a tenant submits.

    ``program(ctx, *args)`` runs on every rank of the job's
    sub-communicator (the :class:`~repro.mpi.job.MpiJob` convention).
    Jobs that need custom process wiring — a DCGN runtime, a
    master/worker split — pass ``launch(job) -> [Process]`` instead,
    and optionally ``finalize(job)`` (a generator the watcher drains
    after the processes finish, before the communicator is freed — the
    place a DCGN job winds its service threads down).
    """

    name: str
    n_nodes: int
    program: Optional[Callable[..., Generator[Event, Any, Any]]] = None
    args: tuple = ()
    launch: Optional[Callable[["Job"], List[Process]]] = None
    finalize: Optional[
        Callable[["Job"], Generator[Event, Any, None]]
    ] = None
    metadata: dict = field(default_factory=dict)


class Job:
    """One submitted job's live state (scheduler-owned)."""

    __slots__ = (
        "scheduler",
        "id",
        "spec",
        "state",
        "nodes",
        "comm",
        "runtime",
        "cancel_requested",
        "submit_t",
        "place_t",
        "start_t",
        "end_t",
        "done",
        "_procs",
    )

    def __init__(
        self, scheduler: "ClusterScheduler", job_id: int, spec: JobSpec
    ) -> None:
        self.scheduler = scheduler
        self.id = job_id
        self.spec = spec
        self.state = QUEUED
        #: Nodes reserved for this job (set when placement starts).
        self.nodes: Optional[List[int]] = None
        #: The job's sub-communicator (set when it starts running;
        #: freed — but kept for inspection — when the job finishes).
        self.comm: Optional[Communicator] = None
        #: Slot for job-owned runtime state (e.g. a DcgnRuntime).
        self.runtime: Any = None
        self.cancel_requested = False
        self.submit_t = scheduler.sim.now
        self.place_t: Optional[float] = None
        self.start_t: Optional[float] = None
        self.end_t: Optional[float] = None
        #: Fires (with the terminal state) when the job ends.
        self.done: Event = scheduler.sim.event(
            name=f"serve.done.{spec.name}"
        )
        self._procs: List[Process] = []

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def queue_wait(self) -> Optional[float]:
        """Seconds spent queued (None while still queued)."""
        if self.place_t is None:
            return None
        return self.place_t - self.submit_t

    def results(self) -> List[Any]:
        """Per-process return values (valid once done)."""
        return [p.value for p in self._procs]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Job #{self.id} {self.name!r} {self.state}>"


class ClusterScheduler:
    """FIFO + backfill admission over one shared cluster.

    ``policy`` picks the placement policy (see
    :mod:`repro.serve.placement`); ``backend`` is handed to the fabric
    communicator and inherited by every job's sub-communicator
    (``"exact"`` for real shared-wire contention, ``"analytic"`` /
    ``"pricing"`` for large sweeps).  ``place_delay_us`` +
    ``launch_us_per_node`` × nodes model job launch overhead.
    """

    def __init__(
        self,
        cluster: Cluster,
        policy: str = "packed",
        backend: str = "exact",
        seed: int = 0,
        place_delay_us: float = 200.0,
        launch_us_per_node: float = 12.5,
        tuning=None,
    ) -> None:
        if policy not in POLICIES:
            raise PlacementError(
                f"unknown placement policy {policy!r}; valid: "
                + ", ".join(POLICIES)
            )
        self.cluster = cluster
        self.sim: Simulator = cluster.sim
        self.policy = policy
        self.place_delay_us = place_delay_us
        self.launch_us_per_node = launch_us_per_node
        self.topology = cluster.interconnect.topology
        #: The shared fabric: one rank per node, world ids == node ids.
        self.fabric = Communicator(
            cluster,
            list(range(cluster.n_nodes)),
            tuning=tuning,
            backend=backend,
            name="fabric",
        )
        #: node id -> owning job id (None = free).
        self._owner: List[Optional[int]] = [None] * cluster.n_nodes
        self._queue: List[Job] = []
        #: Every job ever submitted, by id.
        self.jobs: List[Job] = []
        self._rng = random.Random(seed)
        #: Scheduler counters (mirrors of the sim.stats serve_* fields,
        #: kept per-scheduler so concurrent schedulers stay separable).
        self.stats: Dict[str, int] = {
            "submitted": 0,
            "backfilled": 0,
            "completed": 0,
            "cancelled": 0,
        }
        self._released = False

    # -- introspection -----------------------------------------------------
    @property
    def n_free(self) -> int:
        return sum(1 for o in self._owner if o is None)

    def free_nodes(self) -> List[int]:
        """Currently unowned nodes, ascending."""
        return [n for n, o in enumerate(self._owner) if o is None]

    def owner_of(self, node: int) -> Optional[int]:
        """Owning job id of ``node`` (None = free)."""
        return self._owner[node]

    @property
    def outstanding(self) -> List[Job]:
        """Jobs not yet in a terminal state."""
        return [j for j in self.jobs if j.state not in TERMINAL]

    # -- public API --------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Queue a job; placement may start immediately (same instant)."""
        if self._released:
            raise SchedulerError("scheduler has been released")
        if spec.n_nodes < 1:
            raise SchedulerError(
                f"job {spec.name!r} requests {spec.n_nodes} nodes"
            )
        if spec.n_nodes > self.cluster.n_nodes:
            raise SchedulerError(
                f"job {spec.name!r} requests {spec.n_nodes} nodes; "
                f"the cluster has {self.cluster.n_nodes} — it can "
                "never be placed"
            )
        if spec.program is None and spec.launch is None:
            raise SchedulerError(
                f"job {spec.name!r} has neither program nor launch"
            )
        job = Job(self, len(self.jobs), spec)
        self.jobs.append(job)
        self._queue.append(job)
        self.stats["submitted"] += 1
        self.sim.stats.serve_jobs += 1
        self.sim.trace(
            "serve.submit", job=job.name, n_nodes=spec.n_nodes
        )
        self._admit()
        return job

    def cancel(self, job: Job) -> None:
        """Cancel a queued or placing job.

        Cancelling a running job raises — preemption (checkpoint,
        drain, re-queue) is the ROADMAP follow-on.  Cancelling a
        terminal job is a no-op.
        """
        if job.state in TERMINAL:
            return
        if job.state == QUEUED:
            self._queue.remove(job)
            self._finish(job, CANCELLED)
            return
        if job.state == PLACING:
            # The placement process observes the flag when its launch
            # delay elapses and releases the reservation.
            job.cancel_requested = True
            return
        raise SchedulerError(
            f"cannot cancel running job {job.name!r} "
            "(preemption is not implemented)"
        )

    def release(self) -> None:
        """Tear the scheduler down (driver-level, after all jobs end).

        Frees the fabric communicator so repeated scheduler builds on
        one simulation don't accumulate matching/engine state.  Refuses
        while jobs are outstanding.
        """
        if self._released:
            return
        live = self.outstanding
        if live:
            names = ", ".join(j.name for j in live[:4])
            raise SchedulerError(
                f"cannot release scheduler with live jobs: {names}"
            )
        self._released = True
        self.fabric.release()

    # -- admission ---------------------------------------------------------
    def _admit(self) -> None:
        """Place every job the FIFO+backfill rule admits right now."""
        i = 0
        head_blocked = False
        while i < len(self._queue):
            job = self._queue[i]
            if job.spec.n_nodes <= self.n_free:
                self._queue.pop(i)
                if head_blocked:
                    self.stats["backfilled"] += 1
                    self.sim.stats.serve_backfills += 1
                    self.sim.trace("serve.backfill", job=job.name)
                self._start_placement(job)
                # The free set shrank; re-test the next entry in place.
            else:
                head_blocked = True
                i += 1

    def _start_placement(self, job: Job) -> None:
        """Select and reserve nodes, then launch the placement process.

        Selection and reservation are **atomic** — no scheduling point
        between them — which is the property the model checker's buggy
        double-allocation fixture deliberately violates.
        """
        nodes = select_nodes(
            self.policy,
            self.topology,
            self.free_nodes(),
            job.spec.n_nodes,
            self._rng,
        )
        for n in nodes:
            if self._owner[n] is not None:
                raise SchedulerError(
                    f"reservation conflict: node {n} already owned by "
                    f"job {self._owner[n]} (scheduler bug)"
                )
        for n in nodes:
            self._owner[n] = job.id
        job.nodes = nodes
        job.state = PLACING
        job.place_t = self.sim.now
        spans = self.sim.spans
        if spans is not None:
            spans.complete(
                job.submit_t, job.place_t, "queued", "serve.job",
                f"job.{job.name}", attrs={"job_id": job.id},
            )
        self.sim.trace("serve.place", job=job.name, nodes=tuple(nodes))
        self.sim.process(
            self._place(job), name=f"serve.place.{job.name}"
        )

    def _launch_overhead_s(self, n_nodes: int) -> float:
        return us(
            self.place_delay_us + self.launch_us_per_node * n_nodes
        )

    def _place(self, job: Job) -> Generator[Event, Any, None]:
        yield self.sim.timeout(
            self._launch_overhead_s(job.spec.n_nodes),
            name=f"serve.launch.{job.name}",
        )
        if job.cancel_requested:
            self._release_nodes(job)
            self._finish(job, CANCELLED)
            self._admit()
            return
        assert job.nodes is not None
        job.comm = self.fabric.create(Group(job.nodes))
        job.state = RUNNING
        job.start_t = self.sim.now
        spans = self.sim.spans
        if spans is not None:
            spans.complete(
                job.place_t, job.start_t, "placing", "serve.job",
                f"job.{job.name}",
                attrs={"job_id": job.id, "n_nodes": len(job.nodes)},
            )
        self.sim.trace("serve.start", job=job.name)
        if job.spec.launch is not None:
            job._procs = list(job.spec.launch(job))
        else:
            comm = job.comm
            job._procs = [
                self.sim.process(
                    job.spec.program(comm.ctx(r), *job.spec.args),
                    name=f"serve.{job.name}.r{r}",
                )
                for r in range(comm.size)
            ]
        self.sim.process(
            self._watch(job), name=f"serve.watch.{job.name}"
        )

    def _watch(self, job: Job) -> Generator[Event, Any, None]:
        # A failed rank process propagates out of this yield and kills
        # the watcher — job failure is loud (the nodes stay reserved
        # and the crash surfaces at sim.run), not silently absorbed.
        for p in job._procs:
            yield p
        if job.spec.finalize is not None:
            yield from job.spec.finalize(job)
        job.comm.free()
        self._release_nodes(job)
        self._finish(job, DONE)
        self.stats["completed"] += 1
        self.sim.trace("serve.done", job=job.name)
        self._admit()

    # -- bookkeeping -------------------------------------------------------
    def _release_nodes(self, job: Job) -> None:
        assert job.nodes is not None
        for n in job.nodes:
            if self._owner[n] != job.id:
                raise SchedulerError(
                    f"release conflict: node {n} owned by "
                    f"{self._owner[n]}, not job {job.id} (scheduler bug)"
                )
            self._owner[n] = None

    def _finish(self, job: Job, state: str) -> None:
        spans = self.sim.spans
        if spans is not None:
            # Close out whatever phase the job was in when it ended.
            track = f"job.{job.name}"
            if job.state == RUNNING:
                spans.complete(
                    job.start_t, self.sim.now, "running", "serve.job",
                    track, attrs={"job_id": job.id, "outcome": state},
                )
            elif job.state == PLACING:
                spans.complete(
                    job.place_t, self.sim.now, "placing", "serve.job",
                    track, attrs={"job_id": job.id, "outcome": state},
                )
            elif job.state == QUEUED:
                spans.complete(
                    job.submit_t, self.sim.now, "queued", "serve.job",
                    track, attrs={"job_id": job.id, "outcome": state},
                )
        job.state = state
        job.end_t = self.sim.now
        if state == CANCELLED:
            self.stats["cancelled"] += 1
        job.done.succeed(state)
