"""Placement policies: which free nodes a job should get.

The scheduler hands this module the set of currently free nodes and a
size; the policy picks the job's node set.  Placement quality is a
*locality* question — :meth:`~repro.hw.topology.base.Topology.locality_group`
says which nodes share cheap links (a fat-tree pod, a torus row, the
whole machine on a flat switch), and the
:class:`~repro.hw.topology.base.FabricProfile` prices what a
domain-crossing hop costs — so the policies and the score both work on
those two views and nothing topology-specific:

``packed``
    Fill the locality domains with the most free nodes first, so a job
    spans as few domains as possible (ties broken toward the lowest
    domain id — deterministic).  On an oversubscribed fat tree this is
    the placement whose collectives cross the fewest tapered uplinks —
    zero, when a whole pod is free.
``spread``
    Round-robin one node per domain, deliberately maximizing the
    domains spanned — the placement a throughput-hungry scheduler
    produces when it "load-balances" pods, and the natural victim
    placement for uplink contention.
``random``
    A seeded uniform sample of the free nodes — the baseline the
    serving benchmark's placement gate compares against.

Every policy returns a **sorted** node list: job ranks are assigned in
node order, so the choice is a set, not a permutation, and derived
communicators stay deterministic.

Fragmented results need no special casing here: the job's
sub-communicator recomputes ``locality_groups``/``fragmented`` from its
own placement (:meth:`Communicator._init_locality`), and its autotuned
tuning falls back to hierarchical schedules exactly as a hand-built
fragmented job would (PR 2/PR 4 machinery).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from ..hw.topology.base import Topology
from .errors import PlacementError

__all__ = [
    "POLICIES",
    "select_nodes",
    "placement_score",
    "fragmentation",
    "domains_of",
]

#: Valid policy names, in documentation order.
POLICIES = ("packed", "spread", "random")

#: Per-hop payload the score prices (a typical collective block: large
#: enough that the beta term dominates, small enough to stay eager).
SCORE_NBYTES = 64 * 1024


def domains_of(
    topo: Topology, nodes: Sequence[int]
) -> Dict[int, List[int]]:
    """Group ``nodes`` by locality domain (domain id -> sorted nodes)."""
    by_dom: Dict[int, List[int]] = {}
    for n in sorted(nodes):
        by_dom.setdefault(topo.locality_group(n), []).append(n)
    return by_dom


def fragmentation(topo: Topology, nodes: Sequence[int]) -> Tuple[int, int]:
    """(domains spanned, ring crossings) of a node set.

    ``crossings`` counts domain boundaries along the sorted-node ring —
    the neighbor-exchange pattern ring collectives follow.  A contiguous
    placement crosses each spanned domain once; a scattered one crosses
    nearly every hop.
    """
    ordered = sorted(nodes)
    if not ordered:
        raise PlacementError("fragmentation of an empty node set")
    doms = [topo.locality_group(n) for n in ordered]
    k = len(ordered)
    crossings = sum(
        1 for i in range(k) if doms[i] != doms[(i + 1) % k]
    ) if k > 1 else 0
    return len(set(doms)), crossings


def placement_score(
    topo: Topology, nodes: Sequence[int], nbytes: int = SCORE_NBYTES
) -> float:
    """Modelled seconds for one neighbor round on the sorted-node ring
    (lower is better).

    Each same-domain hop pays ``alpha + nbytes*beta``; each crossing
    pays ``cross_alpha + nbytes*cross_load_beta`` — the *loaded*
    crossing cost, because a ring round pushes every crossing through
    the bottleneck at once.  This is the static analogue of what the
    autotuner's cost model sweeps, cheap enough to score every
    candidate placement.
    """
    ordered = sorted(nodes)
    if not ordered:
        raise PlacementError("placement_score of an empty node set")
    if len(ordered) == 1:
        return 0.0
    prof = topo.profile()
    doms = [topo.locality_group(n) for n in ordered]
    k = len(ordered)
    cost = 0.0
    for i in range(k):
        if doms[i] == doms[(i + 1) % k]:
            cost += prof.alpha_s + nbytes * prof.beta_s_per_B
        else:
            cost += (
                prof.cross_alpha_s + nbytes * prof.cross_load_beta_s_per_B
            )
    return cost


def _packed(
    topo: Topology, free: List[int], k: int
) -> List[int]:
    by_dom = domains_of(topo, free)
    # Fullest domains first so the job spans as few as possible; the
    # domain id breaks ties deterministically (and keeps equal-freedom
    # machines filling pod 0 upward, which is what operators expect).
    order = sorted(by_dom, key=lambda d: (-len(by_dom[d]), d))
    picked: List[int] = []
    for d in order:
        take = min(k - len(picked), len(by_dom[d]))
        picked.extend(by_dom[d][:take])
        if len(picked) == k:
            break
    return sorted(picked)


def _spread(
    topo: Topology, free: List[int], k: int
) -> List[int]:
    by_dom = domains_of(topo, free)
    order = sorted(by_dom)
    picked: List[int] = []
    i = 0
    while len(picked) < k:
        d = order[i % len(order)]
        if by_dom[d]:
            picked.append(by_dom[d].pop(0))
        else:
            # Domain exhausted: drop it from the rotation.
            order.remove(d)
            continue
        i += 1
    return sorted(picked)


def select_nodes(
    policy: str,
    topo: Topology,
    free: Sequence[int],
    k: int,
    rng: random.Random,
) -> List[int]:
    """Pick ``k`` of the ``free`` nodes under ``policy`` (sorted)."""
    if policy not in POLICIES:
        raise PlacementError(
            f"unknown placement policy {policy!r}; valid: "
            + ", ".join(POLICIES)
        )
    if k < 1:
        raise PlacementError(f"placement needs >= 1 node, got {k}")
    free_list = sorted(free)
    if k > len(free_list):
        raise PlacementError(
            f"placement needs {k} nodes; only {len(free_list)} free"
        )
    if policy == "packed":
        return _packed(topo, free_list, k)
    if policy == "spread":
        return _spread(topo, free_list, k)
    return sorted(rng.sample(free_list, k))
