"""The serving layer: scheduler, placement, open-loop workloads.

Turns the one-job-per-cluster simulator into a multi-tenant serving
substrate (ROADMAP item 3): :class:`ClusterScheduler` queues and places
concurrent jobs on one shared fabric with FIFO+backfill admission,
:mod:`~repro.serve.placement` picks node sets by locality
(packed/spread/random), and :mod:`~repro.serve.workload` drives
request services under open-loop Poisson load with per-request latency
tracing.  ``benchmarks/bench_serving.py`` is the gated study:
locality-aware placement vs. random under offered-load sweeps.
"""

from .errors import PlacementError, SchedulerError, ServeError
from .placement import (
    POLICIES,
    domains_of,
    fragmentation,
    placement_score,
    select_nodes,
)
from .scheduler import (
    CANCELLED,
    DONE,
    PLACING,
    QUEUED,
    RUNNING,
    ClusterScheduler,
    Job,
    JobSpec,
)
from .workload import (
    OpenLoopDriver,
    Request,
    RequestLog,
    open_loop_arrivals,
    percentile,
)

__all__ = [
    "ServeError",
    "SchedulerError",
    "PlacementError",
    "POLICIES",
    "select_nodes",
    "placement_score",
    "fragmentation",
    "domains_of",
    "ClusterScheduler",
    "Job",
    "JobSpec",
    "QUEUED",
    "PLACING",
    "RUNNING",
    "DONE",
    "CANCELLED",
    "OpenLoopDriver",
    "Request",
    "RequestLog",
    "open_loop_arrivals",
    "percentile",
]
