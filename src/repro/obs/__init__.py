"""Observability layer: span tracing, link accounting, trace export.

The runtime can *run* 1024-rank sweeps; this package lets it *explain*
them.  Three pieces, all timing-passive (attaching them never changes
simulated timestamps or payload bytes — the exact backend stays
byte-stable with tracing on):

* :mod:`~repro.obs.spans` — :class:`SpanRecorder`, the single hook
  (``sim.spans``, same pattern as ``sim.stats``/``sim.tracer``) that
  every instrumented layer checks.  Collectives, schedule rounds, p2p
  matching, RMA epochs, DCGN comm-thread slots, the fast-path pricer
  and the serving scheduler all emit spans when a recorder is attached.
* :mod:`~repro.obs.links` — per-channel busy-time/bytes utilization
  report over :meth:`~repro.hw.topology.base.Topology.channels`, fed
  either by simulated transfers (exact backend) or the analytic
  accounting hook (fast-path backends).
* :mod:`~repro.obs.export` / :mod:`~repro.obs.critical` — Chrome-trace
  (Perfetto) JSON export, and a critical-path walk that attributes the
  simulated wall clock to wire / overhead / compute / queueing / idle.

``python -m repro.trace`` is the CLI over all of it.
"""

from .spans import Span, SpanRecorder
from .links import link_report, format_link_report
from .export import to_chrome_trace, write_chrome_trace
from .critical import (
    critical_path,
    format_critical_path,
    collective_profile,
    format_collective_profile,
)

__all__ = [
    "Span",
    "SpanRecorder",
    "link_report",
    "format_link_report",
    "to_chrome_trace",
    "write_chrome_trace",
    "critical_path",
    "format_critical_path",
    "collective_profile",
    "format_collective_profile",
]
