"""Per-channel fabric utilization report.

Every :class:`~repro.sim.resources.BandwidthChannel` accumulates
``bytes_moved`` and ``busy_s`` as transfers run (exact backend) or as
the analytic accounting hook books priced legs
(:meth:`~repro.hw.topology.base.Topology.account`).  This module turns
those counters into a report: one row per channel with the busy
fraction over a wall-clock interval.

Under analytic accounting the *demand* booked onto a link can exceed
the wall clock — ``busy_frac > 1`` — because priced transfers never
queue against each other.  That over-commit is the congestion signal:
a pod uplink at 3.2x demand under packed placement versus 0.4x under
spread is exactly the p99 gap's mechanism.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

__all__ = ["link_report", "format_link_report"]


def link_report(
    topology: Any,
    wall_s: Optional[float] = None,
    include_idle: bool = False,
) -> List[Dict[str, Any]]:
    """One row per fabric channel: name, bytes, busy_s, busy_frac.

    ``topology`` is anything with ``channels()`` (a
    :class:`~repro.hw.topology.base.Topology` or an
    :class:`~repro.hw.interconnect.Interconnect`).  ``wall_s`` scales
    busy time to a fraction; ``None`` leaves ``busy_frac`` at 0.0.
    Idle channels (no bytes, no busy time) are dropped unless
    ``include_idle`` — a 256-node fat-tree has hundreds of channels and
    the interesting ones are the hot ones.
    """
    rows: List[Dict[str, Any]] = []
    for ch in topology.channels():
        if not include_idle and ch.bytes_moved == 0 and ch.busy_s == 0.0:
            continue
        frac = (ch.busy_s / wall_s) if wall_s else 0.0
        rows.append(
            {
                "name": ch.name,
                "bytes": int(ch.bytes_moved),
                "busy_s": float(ch.busy_s),
                "busy_frac": float(frac),
            }
        )
    return rows


def format_link_report(
    rows: List[Dict[str, Any]], top: Optional[int] = None
) -> str:
    """Fixed-width table of ``link_report`` rows, busiest first."""
    ordered = sorted(rows, key=lambda r: (-r["busy_s"], r["name"]))
    if top is not None:
        ordered = ordered[:top]
    if not ordered:
        return "(no fabric traffic recorded)"
    w = max(len(r["name"]) for r in ordered)
    lines = [
        f"{'link':<{w}}  {'bytes':>14}  {'busy_s':>12}  {'busy%':>8}"
    ]
    for r in ordered:
        lines.append(
            f"{r['name']:<{w}}  {r['bytes']:>14,}  "
            f"{r['busy_s']:>12.6f}  {100.0 * r['busy_frac']:>7.1f}%"
        )
    return "\n".join(lines)
