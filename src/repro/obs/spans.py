"""Span recording: the single observation hook behind ``sim.spans``.

A :class:`Span` is a named interval on a *track* (one track per rank,
per comm thread, per fabric channel, per serving job).  The recorder is
attached with :meth:`Simulator.attach_spans
<repro.sim.core.Simulator.attach_spans>`; when ``sim.spans`` is
``None`` (the default) every instrumentation point is a single
attribute load and ``is not None`` branch, so the un-traced hot path
pays nothing measurable and the exact backend's event timing is
bit-identical either way — recording only *observes* ``sim.now``, it
never yields, schedules, or mutates simulation state.

Span identity is a monotonically increasing integer ``sid`` assigned at
``begin`` time, which keeps traces deterministic run-to-run.  ``link``
carries a cross-track dependency (e.g. a receive's wait span links to
the matching send span) for the critical-path walk; ``parent`` nests
spans on the same logical activity (schedule rounds under their
collective).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional

from ..sim.tracing import RecordingControl

__all__ = ["Span", "SpanRecorder"]


class Span:
    """One recorded interval.  Mutable until :meth:`SpanRecorder.end`."""

    __slots__ = (
        "sid", "name", "category", "track", "t0", "t1", "parent",
        "link", "attrs",
    )

    def __init__(
        self,
        sid: int,
        name: str,
        category: str,
        track: str,
        t0: float,
        t1: Optional[float] = None,
        parent: Optional[int] = None,
        link: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.sid = sid
        self.name = name
        self.category = category
        self.track = track
        self.t0 = t0
        self.t1 = t1
        self.parent = parent
        self.link = link
        self.attrs = attrs

    @property
    def dur(self) -> float:
        """Span duration in simulated seconds (0.0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Span({self.category}:{self.name} track={self.track} "
            f"[{self.t0:.6g}, {self.t1 if self.t1 is not None else '...'}])"
        )


class SpanRecorder(RecordingControl):
    """Collects completed spans into a (optionally bounded) buffer.

    ``maxlen`` keeps only the most recent spans — long serving runs can
    stay traced without unbounded growth.  ``stats`` (set by
    ``Simulator.attach_spans``) lets the recorder count its own closed
    spans in ``sim.stats.spans`` so traced benches see what tracing
    recorded.

    Recording is a two-phase affair to honor the tracing-overhead
    budget: :meth:`complete` (the hot path — every wire transfer, p2p
    protocol leg and software-overhead charge lands there) appends a
    raw 9-tuple, which is ~3x cheaper than constructing a
    :class:`Span`, and the tuples are materialized into ``Span``
    objects only when :attr:`spans` is first read — report time, not
    simulation time.
    """

    __slots__ = ("_buf", "_dirty", "_next_sid", "stats")

    def __init__(self, maxlen: Optional[int] = None) -> None:
        super().__init__()
        self._buf: Deque[Any] = deque(maxlen=maxlen)
        self._dirty = False
        self._next_sid = 1
        self.stats: Any = None

    @property
    def spans(self) -> "Deque[Span]":
        """Completed spans in record order (materialized on access)."""
        if self._dirty:
            self._materialize()
        return self._buf

    def _materialize(self) -> None:
        new = object.__new__
        buf = self._buf
        for _ in range(len(buf)):
            row = buf.popleft()
            if type(row) is tuple:
                span = new(Span)
                (span.sid, span.name, span.category, span.track,
                 span.t0, span.t1, span.parent, span.link,
                 span.attrs) = row
                buf.append(span)
            else:
                buf.append(row)
        self._dirty = False

    # -- recording -----------------------------------------------------

    def begin(
        self,
        t: float,
        name: str,
        category: str,
        track: str,
        parent: Optional[int] = None,
        link: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[Span]:
        """Open a span at ``t``; returns ``None`` when paused.

        Call sites hold the returned span and pass it to :meth:`end`
        (``end`` tolerates ``None``, so the pause check lives here
        only).  ``attrs`` is a plain dict (or ``None``) rather than
        ``**kwargs`` so attribute-less spans — most of a traced run —
        cost zero dict allocations.
        """
        if not self.enabled:
            return None
        sid = self._next_sid
        self._next_sid = sid + 1
        span = Span.__new__(Span)
        span.sid = sid
        span.name = name
        span.category = category
        span.track = track
        span.t0 = t
        span.t1 = None
        span.parent = parent
        span.link = link
        span.attrs = attrs
        return span

    def end(self, t: float, span: Optional[Span]) -> Optional[Span]:
        """Close ``span`` at ``t`` and commit it to the buffer."""
        if span is None:
            return None
        span.t1 = t
        self._buf.append(span)
        if self.stats is not None:
            self.stats.spans += 1
        return span

    def complete(
        self,
        t0: float,
        t1: float,
        name: str,
        category: str,
        track: str,
        parent: Optional[int] = None,
        link: Optional[int] = None,
        attrs: Optional[Dict[str, Any]] = None,
        sid: Optional[int] = None,
    ) -> Optional[int]:
        """Record a retrospective span ``[t0, t1]`` in one call.

        Returns the new span's ``sid`` (``None`` when paused), *not*
        the span object — the row is stored as a raw tuple and only
        turned into a :class:`Span` when :attr:`spans` is read.  This
        is the traced hot path (per-transfer wire spans, p2p protocol
        spans, software-overhead spans), and the 10%-overhead budget
        is paid per call; the analytic backends also funnel whole
        priced span trees through here at commit time.

        Pass ``sid`` from :meth:`alloc_sid` when the identifier had to
        be published (e.g. stamped into a wire message for the
        receiver's ``link``) before the span's end time was known.

        Hot call sites pass every argument positionally — keyword
        marshaling costs real time at tens of thousands of calls per
        traced run.
        """
        if not self.enabled:
            return None
        if sid is None:
            sid = self._next_sid
            self._next_sid = sid + 1
        self._buf.append(
            (sid, name, category, track, t0, t1, parent, link, attrs)
        )
        self._dirty = True
        st = self.stats
        if st is not None:
            st.spans += 1
        return sid

    def alloc_sid(self) -> Optional[int]:
        """Reserve a span id now, to record with :meth:`complete` later.

        Lets a sender publish its span's identity (for cross-track
        ``link``) before the span closes, without paying for a mutable
        :class:`Span` on the hot path.  Returns ``None`` when paused.
        """
        if not self.enabled:
            return None
        sid = self._next_sid
        self._next_sid = sid + 1
        return sid

    def instant(
        self,
        t: float,
        name: str,
        category: str,
        track: str,
        attrs: Optional[Dict[str, Any]] = None,
    ) -> Optional[int]:
        """Record a zero-duration marker (poll tick, commit point)."""
        return self.complete(t, t, name, category, track, attrs=attrs)

    # -- queries -------------------------------------------------------

    def select(
        self,
        category: Optional[str] = None,
        name: Optional[str] = None,
        track: Optional[str] = None,
        predicate: Optional[Callable[[Span], bool]] = None,
    ) -> List[Span]:
        """Completed spans matching every given filter."""
        out: Iterable[Span] = self.spans
        if category is not None:
            out = [s for s in out if s.category == category]
        if name is not None:
            out = [s for s in out if s.name == name]
        if track is not None:
            out = [s for s in out if s.track == track]
        if predicate is not None:
            out = [s for s in out if predicate(s)]
        return list(out)

    def count(self, category: str) -> int:
        """Number of completed spans in ``category``."""
        return sum(1 for s in self.spans if s.category == category)

    def tracks(self) -> List[str]:
        """Track names in first-appearance order."""
        seen: Dict[str, None] = {}
        for s in self.spans:
            if s.track not in seen:
                seen[s.track] = None
        return list(seen)

    def wall(self) -> float:
        """Latest span end time (0.0 when empty)."""
        return max((s.t1 for s in self.spans if s.t1 is not None),
                   default=0.0)

    def by_sid(self) -> Dict[int, Span]:
        """Index of completed spans (for link/parent resolution)."""
        return {s.sid: s for s in self.spans}

    def trim(self, t_end: float) -> int:
        """Drop spans that *begin* after ``t_end``; returns the count.

        Service-thread teardown (e.g. the DCGN watchdog horizon) can
        emit poll ticks long after the application finished; trimming
        to the last real activity keeps reports readable.
        """
        kept = [s for s in self.spans if s.t0 <= t_end]
        dropped = len(self._buf) - len(kept)
        self._buf = deque(kept, maxlen=self._buf.maxlen)
        return dropped

    def clear(self) -> None:
        """Drop all completed spans (sid counter keeps advancing)."""
        self._buf.clear()
        self._dirty = False
