"""Critical-path attribution over a recorded span buffer.

:func:`critical_path` answers "where did the wall clock go?" by
walking backward from the last thing that finished, always jumping to
the *last blocker*: the span's cross-track ``link`` (a receive's wait
span links to the matching send) when it has one, otherwise the latest
earlier span on the same track.  Every instant of the walk is
attributed to exactly one class —

* ``wire``      — payload transit (p2p sends, RMA ops, schedule rounds);
* ``overhead``  — software send/receive overhead, fast-path pricer
  stages, DCGN slot servicing;
* ``compute``   — compute steps and request service time;
* ``queueing``  — blocked waiting for a match or a service slot;
* ``idle``      — nothing on the critical path was running;

— so the per-class totals sum to the simulated wall clock *exactly*
(floating-point addition aside).  Container spans (a collective span
whose rounds are recorded separately, RMA epochs, serving job phases)
and channel-track ``wire`` spans (already represented by the rank-side
send spans) are excluded from the walk to avoid double counting.

:func:`collective_profile` is the complementary top-down view: total
and mean duration per collective (op + algorithm), straight from the
``collective`` spans.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Any, Dict, List, Optional

from .spans import Span

__all__ = ["critical_path", "collective_profile", "CLASSES"]

#: Attribution classes, report order.
CLASSES = ("wire", "overhead", "compute", "queueing", "idle")

#: span category -> attribution class for walkable (leaf) spans.
_CLASS = {
    "p2p.send": "wire",
    "rma.op": "wire",
    "round": "wire",
    "overhead": "overhead",
    "fastpath.collect": "overhead",
    "fastpath.interpret": "overhead",
    "fastpath.commit": "overhead",
    "dcgn.slot": "overhead",
    "compute": "compute",
    "serve.request": "compute",
    "p2p.wait": "queueing",
    "serve.wait": "queueing",
}

#: Categories whose time is recorded again at finer grain elsewhere.
_CONTAINERS = frozenset(
    {"collective", "rma.epoch", "serve.job", "wire", "dcgn.poll"}
)


def _walkable(spans) -> List[Span]:
    out = []
    for s in spans:
        if s.t1 is None or s.category in _CONTAINERS:
            continue
        if s.t1 <= s.t0:
            continue  # instants carry no time
        out.append(s)
    return out


def critical_path(recorder: Any) -> Dict[str, Any]:
    """Attribute the simulated wall clock to the classes in ``CLASSES``.

    Returns ``{"wall_s", "by_class": {cls: seconds}, "n_steps",
    "path"}`` where ``path`` is the walked span chain, latest first
    (sids).  An empty or instant-only buffer yields an all-idle wall.
    """
    wall = recorder.wall()
    by_class = {c: 0.0 for c in CLASSES}
    leaves = _walkable(recorder.spans)
    if not leaves or wall <= 0.0:
        by_class["idle"] = wall
        return {
            "wall_s": wall, "by_class": by_class, "n_steps": 0, "path": [],
        }
    by_sid = {s.sid: s for s in leaves}
    # Per-track spans ordered by end time, for last-blocker lookups.
    per_track: Dict[str, List[Span]] = {}
    for s in leaves:
        per_track.setdefault(s.track, []).append(s)
    ends: Dict[str, List[float]] = {}
    for track, lst in per_track.items():
        lst.sort(key=lambda s: (s.t1, s.sid))
        ends[track] = [s.t1 for s in lst]

    def last_on_track_before(track: str, t: float) -> Optional[Span]:
        lst = per_track.get(track)
        if not lst:
            return None
        i = bisect_right(ends[track], t) - 1
        return lst[i] if i >= 0 else None

    cur = max(leaves, key=lambda s: (s.t1, s.sid))
    cursor = wall
    if wall > cur.t1:
        by_class["idle"] += wall - cur.t1
        cursor = cur.t1
    path: List[int] = []
    visited = set()
    while cur is not None and cursor > 0.0:
        if cur.sid in visited:  # pragma: no cover - defensive
            break
        visited.add(cur.sid)
        path.append(cur.sid)
        hi = min(cur.t1, cursor)
        lo = min(cur.t0, hi)
        if hi > lo:
            by_class[_CLASS.get(cur.category, "overhead")] += hi - lo
        cursor = lo
        nxt: Optional[Span] = None
        if cur.link is not None:
            nxt = by_sid.get(cur.link)
        if nxt is None:
            nxt = last_on_track_before(cur.track, cursor)
        if nxt is None:
            break
        if nxt.t1 < cursor:
            by_class["idle"] += cursor - nxt.t1
            cursor = nxt.t1
        cur = nxt
    if cursor > 0.0:
        by_class["idle"] += cursor
    return {
        "wall_s": wall,
        "by_class": by_class,
        "n_steps": len(path),
        "path": path,
    }


def format_critical_path(report: Dict[str, Any]) -> str:
    """One line per class: seconds and share of wall."""
    wall = report["wall_s"] or 1e-300
    lines = [f"wall {report['wall_s'] * 1e3:.3f} ms "
             f"({report['n_steps']} spans on the path)"]
    for cls in CLASSES:
        t = report["by_class"][cls]
        lines.append(f"  {cls:<9} {t * 1e3:>12.3f} ms  {100 * t / wall:>5.1f}%")
    return "\n".join(lines)


def collective_profile(
    recorder: Any, top: Optional[int] = None
) -> List[Dict[str, Any]]:
    """Aggregate ``collective`` spans by name (op + algorithm).

    Rows: name, count (rank-spans), total_s, mean_s, max_s, nbytes —
    sorted by total time descending.  Note ``count`` counts per-rank
    spans: one N-rank allreduce contributes N.
    """
    agg: Dict[str, Dict[str, Any]] = {}
    for s in recorder.spans:
        if s.category != "collective" or s.t1 is None:
            continue
        row = agg.get(s.name)
        if row is None:
            row = agg[s.name] = {
                "name": s.name, "count": 0, "total_s": 0.0,
                "max_s": 0.0, "nbytes": 0,
            }
        d = s.t1 - s.t0
        row["count"] += 1
        row["total_s"] += d
        row["max_s"] = max(row["max_s"], d)
        row["nbytes"] += int((s.attrs or {}).get("nbytes", 0))
    rows = sorted(
        agg.values(), key=lambda r: (-r["total_s"], r["name"])
    )
    for r in rows:
        r["mean_s"] = r["total_s"] / r["count"]
    if top is not None:
        rows = rows[:top]
    return rows


def format_collective_profile(rows: List[Dict[str, Any]]) -> str:
    """Fixed-width table of ``collective_profile`` rows."""
    if not rows:
        return "(no collectives recorded)"
    w = max(len(r["name"]) for r in rows)
    lines = [
        f"{'collective':<{w}}  {'spans':>7}  {'total_ms':>10}  "
        f"{'mean_ms':>9}  {'max_ms':>9}  {'bytes':>13}"
    ]
    for r in rows:
        lines.append(
            f"{r['name']:<{w}}  {r['count']:>7}  "
            f"{r['total_s'] * 1e3:>10.3f}  {r['mean_s'] * 1e3:>9.3f}  "
            f"{r['max_s'] * 1e3:>9.3f}  {r['nbytes']:>13,}"
        )
    return "\n".join(lines)
