"""Chrome-trace (Perfetto) JSON export of a recorded span buffer.

Produces the ``{"traceEvents": [...]}`` JSON-object form of the Trace
Event Format, which both ``chrome://tracing`` and https://ui.perfetto.dev
open directly.  Mapping:

* every span *track* becomes one (pid=1, tid=k) lane, named via an
  ``"M"`` (metadata) ``thread_name`` event — one lane per rank, per
  comm thread, per fabric channel, per serving job;
* every completed span becomes an ``"X"`` (complete) event with
  microsecond ``ts``/``dur`` (simulated seconds scaled by 1e6) and its
  category and attrs in ``args``;
* zero-duration spans (poll ticks, commit markers) become ``"i"``
  (instant) events so they render as notches rather than invisible
  zero-width rectangles.

The export is deterministic: tracks are numbered in first-appearance
order and events keep buffer order.
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO, List, Union

__all__ = ["to_chrome_trace", "write_chrome_trace"]

_US = 1e6  # simulated seconds -> trace microseconds


def to_chrome_trace(recorder: Any) -> Dict[str, Any]:
    """Render a :class:`~repro.obs.spans.SpanRecorder` as a trace dict."""
    tids = {name: i + 1 for i, name in enumerate(recorder.tracks())}
    events: List[Dict[str, Any]] = []
    for name, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for s in recorder.spans:
        if s.t1 is None:  # pragma: no cover - open spans never land
            continue
        args: Dict[str, Any] = {"cat_": s.category, "sid": s.sid}
        if s.parent is not None:
            args["parent"] = s.parent
        if s.link is not None:
            args["link"] = s.link
        if s.attrs:
            args.update(s.attrs)
        ev: Dict[str, Any] = {
            "name": s.name,
            "cat": s.category,
            "pid": 1,
            "tid": tids[s.track],
            "ts": s.t0 * _US,
            "args": args,
        }
        if s.t1 > s.t0:
            ev["ph"] = "X"
            ev["dur"] = (s.t1 - s.t0) * _US
        else:
            ev["ph"] = "i"
            ev["s"] = "t"  # thread-scoped instant
        events.append(ev)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"source": "repro.obs", "n_spans": len(recorder.spans)},
    }


def write_chrome_trace(
    recorder: Any, dest: Union[str, IO[str]]
) -> Dict[str, Any]:
    """Write the Perfetto JSON to ``dest`` (path or file object)."""
    doc = to_chrome_trace(recorder)
    if hasattr(dest, "write"):
        json.dump(doc, dest)
    else:
        with open(dest, "w") as fh:
            json.dump(doc, fh)
    return doc
