"""Thread-safe work queues with explicit cost accounting.

Paper §3.2.2: "Thread-safe queues are used to control inter-thread and
inter-node communication."  §5.2 attributes DCGN's small-message overhead
to this multi-threaded architecture — so queue operations charge real
time here, and the counters feed the overhead-breakdown report.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..sim.core import Event, Simulator, us
from ..sim.stores import Store
from ..sim.sync import Signal

__all__ = ["WorkQueue", "sleep_poll_wait"]


class WorkQueue:
    """A FIFO queue between DCGN threads, charging lock/op costs.

    ``put`` charges ``queue_op_us`` to the producer; ``drain`` charges
    one ``queue_op_us`` to the consumer per batch (the lock is taken
    once).  An optional :class:`Signal` is fired on puts so pollers with
    kick-mode can react.
    """

    def __init__(
        self,
        sim: Simulator,
        queue_op_us: float,
        name: str = "",
        kick: Optional[Signal] = None,
    ) -> None:
        self.sim = sim
        self.queue_op_us = queue_op_us
        self.name = name or "workq"
        self._store = Store(sim, name=self.name)
        self.kick = kick
        #: Counters for the overhead report.
        self.puts = 0
        self.drains = 0

    def __len__(self) -> int:
        return len(self._store)

    def put(self, item: Any) -> Generator[Event, Any, None]:
        """Enqueue ``item``, charging the producer the lock+push cost."""
        yield self.sim.timeout(us(self.queue_op_us))
        self._store.put(item)
        self.puts += 1
        if self.kick is not None:
            self.kick.fire()

    def put_nowait(self, item: Any) -> None:
        """Enqueue without charging time (internal handoffs)."""
        self._store.put(item)
        self.puts += 1
        if self.kick is not None:
            self.kick.fire()

    def drain(self) -> Generator[Event, Any, List[Any]]:
        """Take everything currently queued (one lock charge)."""
        yield self.sim.timeout(us(self.queue_op_us))
        self.drains += 1
        out = []
        while True:
            ok, item = self._store.try_get()
            if not ok:
                break
            out.append(item)
        return out

    def drain_nowait(self) -> List[Any]:
        """Take everything without charging time."""
        out = []
        while True:
            ok, item = self._store.try_get()
            if not ok:
                break
            out.append(item)
        return out


def sleep_poll_wait(
    sim: Simulator,
    event: Event,
    poll_interval_us: float,
) -> Generator[Event, Any, Any]:
    """Wait for ``event`` the way a sleep-polling thread would.

    The waiter checks a completion flag every ``poll_interval_us``; it
    therefore observes the completion at the first poll tick *after* the
    event fires.  Implemented event-driven (wait for the event, then
    round up to the next tick boundary relative to the wait start) so the
    simulation stays deadlock-detectable, while the observable timing is
    identical to a poll loop.
    """
    start = sim.now
    value = yield event
    if poll_interval_us > 0:
        interval = us(poll_interval_us)
        elapsed = sim.now - start
        ticks = int(elapsed / interval) + 1
        remainder = start + ticks * interval - sim.now
        # Guard against floating-point edge where we're exactly on a tick.
        if remainder > 1e-15:
            yield sim.timeout(remainder)
    return value
