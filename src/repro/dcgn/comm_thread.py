"""The DCGN communication thread: one per node, sole owner of MPI.

Paper §3.2.2: "The communication thread initializes the underlying MPI,
handles communication requests from kernels, signals CPU- and
GPU-controlling threads as communications complete ... Each DCGN process
spawns exactly one communication thread.  This method allows DCGN to
provide thread-safe access to any communication library, even a
potentially non-threadsafe implementation of MPI."

Responsibilities implemented here:

* sleep-based polling of the node's work queue (requests funneled from
  CPU-kernel threads and GPU-kernel threads);
* point-to-point matching between virtual ranks: local matches complete
  via host memcpy (paper §6.2), remote sends travel over MPI with a
  header + payload wire protocol;
* collective staging: requests accumulate until every local CPU kernel
  and GPU slot has entered, then a single MPI collective runs with one
  rank per node (which is why DCGN's CPU broadcast can beat MVAPICH2's
  in Figure 7) followed by local dispersal.

The wire protocol mimics a real progress engine: one wildcard header
``irecv`` is always outstanding; payload transfers run in spawned
"progress" sub-processes that model MPI's internal engine (the comm
thread remains the only *caller* of MPI operations).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

import numpy as np

from ..hw.node import Node
from ..mpi.communicator import MpiContext, Request
from ..mpi.datatypes import ReduceOp
from ..mpi.status import ANY_SOURCE
from ..sim.core import Event, Simulator, us
from ..sim.sync import Signal
from .errors import CollectiveMismatch, DcgnError
from .groups import GroupTable, WORLD_GID
from .queues import WorkQueue
from .ranks import ANY, RankMap
from .requests import COLLECTIVE_OPS, RMA_OPS, CommRequest, CommStatus
from .windows import DcgnWindowTable

__all__ = ["CommThread", "HDR_TAG", "PAYLOAD_TAG_BASE"]

#: MPI tag of DCGN wire headers (user tag space, below INTERNAL_TAG_BASE).
HDR_TAG = 900_000
#: Payload tags: PAYLOAD_TAG_BASE + seq % PAYLOAD_TAG_MOD.
PAYLOAD_TAG_BASE = 901_000
PAYLOAD_TAG_MOD = 4096

_HDR_LEN = 8  # int64 fields
_KIND_P2P = 1


@dataclass
class _Unexpected:
    """An arrived-but-unmatched message (local or remote origin)."""

    src_vrank: int
    dst_vrank: int
    nbytes: int
    data: Optional[np.ndarray]
    #: For local sends: the originating request, completed upon match.
    local_send: Optional[CommRequest] = None
    #: True once the message sat in the unexpected queue (delivery then
    #: pays a bounce-buffer copy; matched-on-arrival remote messages
    #: land zero-copy, as with rendezvous RDMA).
    buffered: bool = False


@dataclass
class _CollState:
    """Per-node staging state of one collective operation.

    ``gid`` scopes the collective to a slot group (``WORLD_GID`` = the
    whole job): staging waits for the group's *local* members only, the
    MPI phase runs on the group's node sub-communicator, and ordering
    is per group — collectives on disjoint groups progress
    independently and overlap on the wire.
    """

    seq: int
    gid: int = WORLD_GID
    kind: Optional[str] = None
    root: int = -1
    op_name: str = ""
    entries: List[CommRequest] = field(default_factory=list)


class CommThread:
    """Per-node communication thread."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        mpi_ctx: MpiContext,
        rankmap: RankMap,
        kick: Signal,
        groups: GroupTable,
        windows: Optional[DcgnWindowTable] = None,
        name: str = "",
    ) -> None:
        self.sim = sim
        self.node = node
        self.mpi = mpi_ctx
        self.rankmap = rankmap
        #: Slot-group registry.  Must be the ONE table shared by all of
        #: the job's comm threads — a per-thread table would give every
        #: node a different sub-communicator object for the same group
        #: and their collectives would never match.
        self.groups = groups
        #: One-sided window registry (shared; None = job has no windows).
        self.windows = windows
        self.params = node.params
        self.name = name or f"dcgn.comm{node.node_id}"
        #: Internal wake-up signal: fired on queue puts and shutdown so
        #: the thread can idle without burning poll ticks.  Observable
        #: timing is unchanged — processing is quantized to the poll
        #: grid (sleep-based polling, §3.2.3).
        self._wake = Signal(sim, name=f"{self.name}.wake")
        #: Requests from local kernels (CPU threads + GPU threads).
        self.workq = WorkQueue(
            sim,
            queue_op_us=self.params.cpu.queue_op_us,
            name=f"{self.name}.workq",
            kick=self._wake,
        )
        #: Signal fired when CPU-side requests arrive (GPU poller kick).
        self.kick = kick
        self._pending_recvs: List[CommRequest] = []
        self._unexpected: List[_Unexpected] = []
        #: (gid, seq) → staging state; ordering is enforced per gid.
        self._colls: Dict[Tuple[int, int], _CollState] = {}
        self._next_coll: Dict[int, int] = {}
        self._wire_seq = 0
        self._inflight_sends = 0
        #: Collectives whose MPI phase is progressing in the background
        #: (issued nonblockingly; a completer process disperses results).
        self._inflight_colls = 0
        self._shutdown = False
        self._hdr_buf = np.zeros(_HDR_LEN, dtype=np.int64)
        self._hdr_req: Optional[Request] = None
        #: Counters for reports.
        self.stats: Dict[str, int] = {}
        #: When set (by diagnostics/benchmarks), every handled request is
        #: appended here so its lifecycle marks can be inspected.
        self.captured: Optional[List[CommRequest]] = None
        self.proc = sim.process(self._run(), name=self.name)

    # -- external interface ----------------------------------------------
    def shutdown(self) -> None:
        """Ask the thread to exit once quiescent."""
        self._shutdown = True
        self._wake.fire()

    def enqueue_from_cpu(self, req: CommRequest) -> Generator[Event, Any, None]:
        """CPU-kernel-thread entry point: put + kick GPU pollers."""
        req.enqueued_at = self.sim.now
        yield from self.workq.put(req)
        self.kick.fire()

    def enqueue_from_gpu_thread(
        self, req: CommRequest
    ) -> Generator[Event, Any, None]:
        """GPU-kernel-thread entry point (no kick: GPU-only traffic must
        pay the polling interval, per Table 1's GPU-only rows)."""
        req.enqueued_at = self.sim.now
        yield from self.workq.put(req)

    # -- main loop ---------------------------------------------------------
    def _run(self):
        interval = us(self.params.dcgn.comm_poll_interval_us)
        # Deterministic pseudo-random start phase (threads are never
        # synchronized in reality).
        phase = float(
            self.node.rng.stream(f"{self.name}.phase").uniform(0.0, interval)
        )
        if phase > 0:
            yield self.sim.timeout(phase)
        self._post_header_irecv()
        while True:
            spans = self.sim.spans
            if spans is not None:
                # One marker per poll cycle (grid-quantized wakeup).
                spans.instant(
                    self.sim.now, "poll", "dcgn.poll", self.name,
                    attrs={"node": self.node.node_id},
                )
            made_progress = True
            while made_progress:
                made_progress = False
                if len(self.workq) > 0:
                    items = yield from self.workq.drain()
                    for req in items:
                        yield from self._handle_request(req)
                    made_progress = bool(items)
                while self._hdr_req is not None and self._hdr_req.test():
                    yield from self._handle_wire_arrival()
                    self._post_header_irecv()
                    made_progress = True
                while True:
                    key = self._ready_collective()
                    if key is None:
                        break
                    made_progress = True
                    state = self._colls.pop(key)
                    self._next_coll[key[0]] = key[1] + 1
                    yield from self._execute_collective(state)
            if self._shutdown and self._quiescent():
                break
            # Sleep-based polling without busy ticks: block until a wake
            # source fires (queue put, header arrival, shutdown), then
            # quantize the reaction to the next grid tick so observable
            # latency matches a thread sleeping `interval` between polls.
            if not self._actionable():
                from ..sim.primitives import AnyOf

                waits = [self._wake.wait()]
                if self._hdr_req is not None:
                    waits.append(self._hdr_req.event)
                yield AnyOf(self.sim, waits)
            elapsed = self.sim.now - phase
            ticks = int(elapsed / interval) + 1
            remainder = phase + ticks * interval - self.sim.now
            if remainder > 1e-15:
                yield self.sim.timeout(remainder)
        self._cancel_header_irecv()

    def _actionable(self) -> bool:
        """Anything the next poll iteration could act on right now?"""
        return (
            len(self.workq) > 0
            or (self._hdr_req is not None and self._hdr_req.test())
            or self._ready_collective() is not None
            or (self._shutdown and self._quiescent())
        )

    def _quiescent(self) -> bool:
        return (
            len(self.workq) == 0
            and self._inflight_sends == 0
            and self._inflight_colls == 0
            and not self._colls
            and (self._hdr_req is None or not self._hdr_req.test())
        )

    # -- wire protocol -----------------------------------------------------
    def _post_header_irecv(self) -> None:
        self._hdr_buf = np.zeros(_HDR_LEN, dtype=np.int64)
        self._hdr_req = self.mpi.irecv(
            self._hdr_buf, source=ANY_SOURCE, tag=HDR_TAG
        )

    def _cancel_header_irecv(self) -> None:
        if self._hdr_req is not None and not self._hdr_req.test():
            proc = self._hdr_req.event
            proc.interrupt("dcgn shutdown")
            proc.defuse()
        self._hdr_req = None

    def _handle_wire_arrival(self) -> Generator[Event, Any, None]:
        status = yield from self._hdr_req.wait()
        kind, src_vrank, dst_vrank, nbytes, seq = (
            int(self._hdr_buf[0]),
            int(self._hdr_buf[1]),
            int(self._hdr_buf[2]),
            int(self._hdr_buf[3]),
            int(self._hdr_buf[4]),
        )
        if kind != _KIND_P2P:  # pragma: no cover - defensive
            raise DcgnError(f"unknown wire kind {kind}")
        data: Optional[np.ndarray] = None
        if nbytes > 0:
            data = np.empty(nbytes, dtype=np.uint8)
            yield from self.mpi.recv(
                data,
                source=status.source,
                tag=PAYLOAD_TAG_BASE + seq % PAYLOAD_TAG_MOD,
            )
        self._bump("wire_arrivals")
        self.sim.trace(
            "comm.wire_arrival",
            node=self.node.node_id,
            src=src_vrank,
            dst=dst_vrank,
        )
        yield from self._match_arrival(
            _Unexpected(src_vrank, dst_vrank, nbytes, data)
        )

    def _wire_send(self, req: CommRequest, dst_node: int) -> None:
        seq = self._wire_seq
        self._wire_seq += 1
        hdr = np.array(
            [_KIND_P2P, req.src_vrank, req.peer, req.nbytes, seq, 0, 0, 0],
            dtype=np.int64,
        )
        payload = None
        if req.nbytes > 0:
            if req.data is None:
                raise DcgnError(f"{req!r} has no payload snapshot")
            payload = req.data.view(np.uint8).reshape(-1)[: req.nbytes]
        self._inflight_sends += 1
        self._bump("wire_sends")
        self.sim.trace(
            "comm.wire_send",
            node=self.node.node_id,
            src=req.src_vrank,
            dst=req.peer,
        )

        def runner():
            try:
                yield from self.mpi.send(hdr, dest=dst_node, tag=HDR_TAG)
                if payload is not None:
                    yield from self.mpi.send(
                        payload,
                        dest=dst_node,
                        tag=PAYLOAD_TAG_BASE + seq % PAYLOAD_TAG_MOD,
                    )
                # Send-complete semantics: the kernel's send returns once
                # the MPI call finished (paper Figure 2, step 3).
                req.complete(CommStatus(source=req.peer, nbytes=req.nbytes))
            finally:
                self._inflight_sends -= 1

        self.sim.process(runner(), name=f"{self.name}.wire{seq}")

    # -- request handling --------------------------------------------------
    def _handle_request(self, req: CommRequest) -> Generator[Event, Any, None]:
        self._bump(f"req.{req.op}")
        req.stamp("picked", self.sim.now)
        if self.captured is not None:
            self.captured.append(req)
        spans = self.sim.spans
        sp = None
        if spans is not None:
            sp = spans.begin(
                self.sim.now, req.op, "dcgn.slot", self.name,
                attrs={"vrank": req.src_vrank},
            )
        if req.op == "send":
            yield from self._handle_send(req)
        elif req.op == "recv":
            yield from self._handle_recv(req)
        elif req.op in RMA_OPS:
            yield from self._handle_rma(req)
        elif req.op in COLLECTIVE_OPS:
            self._stage_collective(req)
        else:
            raise DcgnError(f"unknown op {req.op!r}")
        if spans is not None:
            spans.end(self.sim.now, sp)

    def _handle_send(self, req: CommRequest) -> Generator[Event, Any, None]:
        dst = req.peer
        dst_node = self.rankmap.node_of(dst)
        local = dst_node == self.node.node_id
        if local and self.params.dcgn.local_via_memcpy:
            entry = _Unexpected(
                req.src_vrank, dst, req.nbytes, req.data, local_send=req
            )
            yield from self._match_arrival(entry)
        else:
            # Remote (or ablation A3: loopback through MPI).
            self._wire_send(req, dst_node)

    def _handle_recv(self, req: CommRequest) -> Generator[Event, Any, None]:
        for i, entry in enumerate(self._unexpected):
            if self._p2p_match(req, entry):
                del self._unexpected[i]
                yield from self._deliver_p2p(req, entry)
                return
        self._pending_recvs.append(req)

    def _match_arrival(self, entry: _Unexpected) -> Generator[Event, Any, None]:
        for i, req in enumerate(self._pending_recvs):
            if self._p2p_match(req, entry):
                del self._pending_recvs[i]
                yield from self._deliver_p2p(req, entry)
                return
        entry.buffered = True
        self._unexpected.append(entry)

    @staticmethod
    def _p2p_match(req: CommRequest, entry: _Unexpected) -> bool:
        if entry.dst_vrank != req.src_vrank:
            return False
        return req.peer == ANY or req.peer == entry.src_vrank

    def _deliver_p2p(
        self, req: CommRequest, entry: _Unexpected
    ) -> Generator[Event, Any, None]:
        """Land a matched message in the receiver (and finish the sender)."""
        if entry.nbytes > 0 and (entry.local_send is not None or entry.buffered):
            # Bounce-buffer memcpy: local sends always stage through host
            # memory (paper §6.2), and unexpected remote messages are
            # buffered then copied.  Matched-on-arrival remote messages
            # land zero-copy (rendezvous into the posted buffer), which
            # is what keeps 1 MB CPU:CPU within a few percent of MPI.
            yield from self.node.memcpy.copy(None, None, nbytes=entry.nbytes)
        status = CommStatus(source=entry.src_vrank, nbytes=entry.nbytes)
        if req.deliver is not None and entry.data is not None:
            req.deliver(entry.data)
        else:
            req.data = entry.data
        req.complete(status)
        if entry.local_send is not None:
            entry.local_send.complete(
                CommStatus(source=entry.dst_vrank, nbytes=entry.nbytes)
            )
        self._bump("p2p_delivered")
        self._kick_if_cpu_involved((req.src_vrank, entry.src_vrank))

    # -- one-sided windows -------------------------------------------------
    def _handle_rma(self, req: CommRequest) -> Generator[Event, Any, None]:
        """Drive a kernel's one-sided operation against a window.

        Matching-free by construction: the origin comm thread issues the
        wire-level RMA op (eager bounce or zero-copy RDMA, per the
        autotuned threshold) and the *target* node's comm thread never
        sees a request at all — the bytes land in (or are read from)
        its registered window region while it services its own kernels.
        The kernel's request completes at *remote* completion, so a
        completed put is already visible to the target.
        """
        if self.windows is None:
            raise DcgnError("this job declares no windows")
        win = self.windows.by_name(str(req.extra["win"]))
        target = req.peer
        offset = int(req.extra.get("offset", 0))
        count = req.nbytes // win.dtype.itemsize
        win.check_range(target, offset, count)
        tnode, base = win.locate(target)
        woff = base + offset
        me = self.node.node_id
        if req.op == "rma_put":
            if req.data is None:
                raise DcgnError(f"{req!r} has no payload snapshot")
            payload = np.ascontiguousarray(req.data.reshape(-1)[:count])
            proc = yield from win.win.start_put(
                me, tnode, payload, woff, snapshot=False, want_event=True
            )

            def finish(req=req, n=int(payload.nbytes)):
                req.complete(CommStatus(source=req.src_vrank, nbytes=n))

        elif req.op == "rma_accumulate":
            if req.data is None:
                raise DcgnError(f"{req!r} has no payload snapshot")
            payload = np.ascontiguousarray(req.data.reshape(-1)[:count])
            op = req.extra.get("reduce_op", "sum")
            proc = yield from win.win.start_accumulate(
                me, tnode, payload, op=op, offset=woff, snapshot=False,
                want_event=True,
            )

            def finish(req=req, n=int(payload.nbytes)):
                req.complete(CommStatus(source=req.src_vrank, nbytes=n))

        elif req.op == "rma_get":
            # zeros, not empty: under the pricing backend the wire op
            # moves no data, and garbage would make runs irreproducible.
            recv = np.zeros(count, dtype=win.dtype)
            proc = yield from win.win.start_get(me, tnode, recv, woff)

            def finish(req=req, recv=recv):
                if req.deliver is not None:
                    req.deliver(recv)
                else:
                    req.data = recv
                req.complete(
                    CommStatus(source=target, nbytes=int(recv.nbytes))
                )

        else:  # pragma: no cover - defensive
            raise DcgnError(f"unknown RMA op {req.op!r}")
        self._inflight_sends += 1
        self._bump(f"rma.{req.op}")

        def runner():
            try:
                yield proc
                finish()
                self._kick_if_cpu_involved((req.src_vrank,))
            finally:
                self._inflight_sends -= 1
                self._wake.fire()

        self.sim.process(runner(), name=f"{self.name}.rma{req.req_id}")

    # -- collectives -------------------------------------------------------
    def _local_quorum(self, gid: int) -> int:
        """How many of the group's members live on this node."""
        return self.groups.local_count(gid, self.node.node_id)

    def _stage_collective(self, req: CommRequest) -> None:
        seq = req.extra.get("coll_seq")
        if seq is None:
            raise DcgnError(f"collective {req!r} missing coll_seq")
        gid = int(req.extra.get("gid", WORLD_GID))
        if gid != WORLD_GID and req.src_vrank not in self.groups.group(gid):
            raise CollectiveMismatch(
                f"vrank {req.src_vrank} issued a collective on group "
                f"{gid} it does not belong to"
            )
        if seq < self._next_coll.get(gid, 0):
            raise CollectiveMismatch(
                f"collective #{seq} (group {gid}) already executed; vrank "
                f"{req.src_vrank} replayed a stale sequence number "
                "(participants disagree on how many collectives ran)"
            )
        state = self._colls.get((gid, seq))
        if state is None:
            state = _CollState(seq=seq, gid=gid)
            self._colls[(gid, seq)] = state
        if state.kind is None:
            state.kind = req.op
            state.root = req.root
            state.op_name = req.extra.get("reduce_op", "")
        else:
            if state.kind != req.op:
                raise CollectiveMismatch(
                    f"collective #{seq}: {req.src_vrank} called {req.op!r} "
                    f"but others called {state.kind!r}"
                )
            if state.root != req.root:
                raise CollectiveMismatch(
                    f"collective #{seq}: root mismatch "
                    f"({req.root} vs {state.root})"
                )
            if state.op_name != req.extra.get("reduce_op", ""):
                raise CollectiveMismatch(
                    f"collective #{seq}: reduce-op mismatch"
                )
        state.entries.append(req)
        if len(state.entries) > self._local_quorum(gid):
            raise CollectiveMismatch(
                f"collective #{seq} (group {gid}): more entries than "
                "local participants"
            )

    def _ready_collective(self) -> Optional[Tuple[int, int]]:
        """The next fully staged collective, if any.

        Per group, collectives execute in sequence order; across groups
        any fully staged head-of-line collective may go — their MPI
        phases run on disjoint sub-communicators (own tag spaces), so
        relative order between groups is free, which is exactly what
        lets disjoint-group collectives overlap.
        """
        for (gid, seq), state in sorted(self._colls.items()):
            if (
                seq == self._next_coll.get(gid, 0)
                and len(state.entries) == self._local_quorum(gid)
            ):
                return (gid, seq)
        return None

    def _kick_if_cpu_involved(self, vranks) -> None:
        """Fire the node kick when a completed op involved local CPU ranks.

        Models the host-side scheduler activity that accompanies
        CPU-kernel communication and incidentally wakes the GPU pollers
        — the mechanism behind Table 1's fast mixed CPU+GPU barriers.
        """
        for v in vranks:
            if (
                 0 <= v < self.rankmap.size
                and self.rankmap.is_cpu(v)
                and self.rankmap.node_of(v) == self.node.node_id
            ):
                self.kick.fire()
                return

    def _execute_collective(
        self, state: _CollState
    ) -> Generator[Event, Any, None]:
        """Stage the collective and hand its wire phase to a completer.

        Staging (payload assembly, local combine trees) runs inline so
        every node issues the MPI-level operation for collective #seq
        of a given group in the same order — the nonblocking
        collectives claim their tag blocks synchronously at issue time,
        which keeps concurrent collectives aligned across nodes.  The
        MPI phase runs on the *group's* node sub-communicator (its own
        tag space and schedule engine) and progresses in the background
        while this thread returns to servicing kernel requests: that is
        the compute/communication overlap the paper's dedicated comm
        thread exists to provide, and what lets collectives on disjoint
        slot groups share the wire.
        """
        self._bump(f"coll.{state.kind}")
        info = self.groups.info(state.gid)
        mpi = (
            self.mpi
            if state.gid == WORLD_GID
            else info.ctx_for(self.node.node_id)
        )
        if state.kind == "barrier":
            self._spawn_completer(state, mpi.ibarrier(), None)
        elif state.kind == "bcast":
            self._start_bcast(state, info, mpi)
        elif state.kind in ("reduce", "allreduce"):
            yield from self._exec_reduce(state, info, mpi)
        elif state.kind == "gather":
            yield from self._exec_gather(state, info, mpi)
        elif state.kind == "scatter":
            self._start_scatter(state, info, mpi)
        elif state.kind == "split":
            self._start_split(state)
        else:
            raise DcgnError(f"unhandled collective {state.kind!r}")

    def _spawn_completer(self, state: _CollState, req, finish) -> None:
        """Wait for the MPI phase, then disperse results and release
        the participants.  ``finish`` is None (plain completion), a
        plain callable, or a generator function charging dispersal
        costs."""
        self._inflight_colls += 1

        def runner():
            try:
                yield from req.wait()
                if finish is None:
                    for e in state.entries:
                        e.complete(CommStatus(source=-1, nbytes=0))
                else:
                    out = finish()
                    if out is not None:
                        yield from out
                self._kick_if_cpu_involved(
                    [e.src_vrank for e in state.entries]
                )
            finally:
                self._inflight_colls -= 1
                self._wake.fire()

        self.sim.process(runner(), name=f"{self.name}.coll{state.seq}")

    def _start_bcast(self, state: _CollState, info, mpi) -> None:
        root_vrank = state.root
        root_node = self.rankmap.node_of(root_vrank)
        nbytes = max(e.nbytes for e in state.entries)
        root_entry = next(
            (e for e in state.entries if e.src_vrank == root_vrank), None
        )
        if root_entry is not None:
            if root_entry.data is None:
                raise DcgnError("bcast root entry has no payload")
            mpi_buf = root_entry.data.view(np.uint8).reshape(-1)[:nbytes].copy()
        else:
            # "one buffer is selected at random from those specified" — we
            # use a staging buffer, equivalent cost-wise.
            mpi_buf = np.empty(nbytes, dtype=np.uint8)
        req = mpi.ibcast(mpi_buf, root=info.mpi_rank_of_node(root_node))

        def finish():
            # Local dispersal: memcpy to CPU participants, data handoff
            # to GPU threads (they perform the PCIe write on their side).
            for entry in state.entries:
                if entry is root_entry:
                    entry.complete(
                        CommStatus(source=root_vrank, nbytes=nbytes)
                    )
                    continue
                if entry.nbytes > 0:
                    yield from self.node.memcpy.copy(
                        None, None, nbytes=nbytes
                    )
                if entry.deliver is not None:
                    entry.deliver(mpi_buf)
                else:
                    # Per-request copy: handing every sibling the same
                    # ndarray would let one rank's buffer mutation corrupt
                    # the others' received payloads.
                    entry.data = mpi_buf.copy()
                entry.complete(CommStatus(source=root_vrank, nbytes=nbytes))

        self._spawn_completer(state, req, finish)

    def _exec_reduce(
        self, state: _CollState, info, mpi
    ) -> Generator[Event, Any, None]:
        op = ReduceOp(state.op_name or "sum")
        if op is ReduceOp.REPLACE:
            raise CollectiveMismatch(
                "ReduceOp.REPLACE is only valid for one-sided "
                "accumulate, not reduce/allreduce"
            )
        root_vrank = state.root
        contributions = sorted(state.entries, key=lambda e: e.src_vrank)
        level: List[np.ndarray] = []
        for e in contributions:
            if e.data is None:
                raise DcgnError(f"reduce entry {e!r} missing contribution")
            level.append(e.data)
        # Tree-combine the local contributions: pairwise combines within
        # a round run on distinct host cores, so the total charge is
        # 1 initial copy + Σ ⌈pairs_in_round / cores⌉ memcpy-equivalents
        # instead of the old serial O(k) fold.  Modeling choice: the
        # cores are genuinely idle (every contributor is blocked in
        # sleep_poll_wait on this collective), and the dual-socket
        # Opterons' per-socket memory controllers plus combine ALU time
        # are taken to give the parallel streams usable bandwidth; if
        # calibration shows this too optimistic, drop `cores` toward
        # the socket count (see ROADMAP "Collective algorithms").
        yield from self.node.memcpy.copy(
            None, None, nbytes=int(level[0].nbytes)
        )
        cores = max(1, self.node.cores)
        while len(level) > 1:
            nxt = [
                op.combine(level[i], level[i + 1])
                for i in range(0, len(level) - 1, 2)
            ]
            if len(level) % 2:
                nxt.append(level[-1])
            pairs = len(level) // 2
            for _ in range((pairs + cores - 1) // cores):
                yield from self.node.memcpy.copy(
                    None, None, nbytes=int(level[0].nbytes)
                )
            level = nxt
        # Safe to alias the sole contribution: combines are never
        # in-place and the MPI layer snapshots sends.
        acc = level[0]
        result = np.empty_like(acc)
        if state.kind == "allreduce":
            mreq = mpi.iallreduce(acc, result, op=op)

            def finish_allreduce():
                for req in state.entries:
                    if req.deliver is not None:
                        req.deliver(result)
                    else:
                        # Per-request copy (same aliasing hazard as bcast).
                        req.data = result.copy()
                    req.complete(
                        CommStatus(source=-1, nbytes=int(result.nbytes))
                    )

            self._spawn_completer(state, mreq, finish_allreduce)
        else:
            root_node = self.rankmap.node_of(root_vrank)
            recvbuf = result if self.node.node_id == root_node else None
            mreq = mpi.ireduce(
                acc, recvbuf, op=op, root=info.mpi_rank_of_node(root_node)
            )

            def finish_reduce():
                for req in state.entries:
                    if req.src_vrank == root_vrank:
                        if req.deliver is not None:
                            req.deliver(result)
                        else:
                            req.data = result
                        req.complete(
                            CommStatus(source=-1, nbytes=int(result.nbytes))
                        )
                    else:
                        req.complete(CommStatus(source=-1, nbytes=0))

            self._spawn_completer(state, mreq, finish_reduce)

    def _local_vranks_in_order(self) -> List[int]:
        return self.rankmap.local_ranks(self.node.node_id)

    def _exec_gather(
        self, state: _CollState, info, mpi
    ) -> Generator[Event, Any, None]:
        """Gather equal-size contributions to the root vrank.

        Every entry carries ``extra["chunk"]`` — the per-rank chunk size
        in bytes (agreed by all participants, as in MPI_Gather).
        Results assemble in *group-rank* order (vrank order for the
        world group).
        """
        root_vrank = state.root
        root_node = self.rankmap.node_of(root_vrank)
        chunk = int(state.entries[0].extra["chunk"])
        # Assemble this node's contribution in group-rank order.
        local = sorted(
            state.entries,
            key=lambda e: info.group.rank_of(e.src_vrank),
        )
        sendbuf = np.zeros(chunk * len(local), dtype=np.uint8)
        for i, e in enumerate(local):
            if e.data is None:
                raise DcgnError(f"gather entry {e!r} missing contribution")
            view = e.data.view(np.uint8).reshape(-1)[:chunk]
            sendbuf[i * chunk : i * chunk + view.size] = view
        # Stage the contributions in parallel waves: the per-entry
        # copies are independent, so k of them run on distinct host
        # cores per wave — Σ ⌈entries / cores⌉ memcpy charges instead of
        # the old serial k (same modeling argument as the reduce
        # tree-combine above: every contributor is blocked in
        # sleep_poll_wait on this collective, so the cores are idle).
        cores = max(1, self.node.cores)
        for _ in range((len(local) + cores - 1) // cores):
            yield from self.node.memcpy.copy(None, None, nbytes=chunk)
        sub_root = info.mpi_rank_of_node(root_node)
        if self.node.node_id == root_node:
            recvbufs = [
                np.zeros(
                    chunk * len(info.local_vranks(n)), dtype=np.uint8
                )
                for n in info.nodes
            ]
            mreq = mpi.igather(sendbuf, recvbufs, root=sub_root)

            def finish_gather_root():
                # Assemble the full result in global group-rank order
                # (a key-reordered group need not be node-major, so
                # each member's chunk lands at its group-rank offset).
                total = np.zeros(chunk * info.group.size, dtype=np.uint8)
                for i, node in enumerate(info.nodes):
                    for j, member in enumerate(info.local_vranks(node)):
                        g = info.group.rank_of(member)
                        total[g * chunk : (g + 1) * chunk] = recvbufs[i][
                            j * chunk : (j + 1) * chunk
                        ]
                root_entry = next(
                    e for e in state.entries if e.src_vrank == root_vrank
                )
                if root_entry.deliver is not None:
                    root_entry.deliver(total)
                else:
                    root_entry.data = total
                for req in state.entries:
                    n = total.size if req.src_vrank == root_vrank else 0
                    req.complete(CommStatus(source=-1, nbytes=n))

            self._spawn_completer(state, mreq, finish_gather_root)
        else:
            mreq = mpi.igather(sendbuf, None, root=sub_root)
            self._spawn_completer(state, mreq, None)

    def _start_scatter(self, state: _CollState, info, mpi) -> None:
        """Scatter equal-size chunks from the root vrank.

        Every entry carries ``extra["chunk"]`` (bytes per rank); the
        root's buffer is read in group-rank order.
        """
        root_vrank = state.root
        root_node = self.rankmap.node_of(root_vrank)
        local = sorted(
            state.entries,
            key=lambda e: info.group.rank_of(e.src_vrank),
        )
        chunk = int(state.entries[0].extra["chunk"])
        recvbuf = np.zeros(chunk * len(local), dtype=np.uint8)
        sub_root = info.mpi_rank_of_node(root_node)
        if self.node.node_id == root_node:
            root_entry = next(
                e for e in state.entries if e.src_vrank == root_vrank
            )
            if root_entry.data is None:
                raise DcgnError("scatter root entry has no payload")
            full = root_entry.data.view(np.uint8).reshape(-1)
            sendbufs = []
            for n in info.nodes:
                pieces = [
                    full[
                        info.group.rank_of(m) * chunk
                        : (info.group.rank_of(m) + 1) * chunk
                    ]
                    for m in info.local_vranks(n)
                ]
                sendbufs.append(np.concatenate(pieces))
            mreq = mpi.iscatter(sendbufs, recvbuf, root=sub_root)
        else:
            mreq = mpi.iscatter(None, recvbuf, root=sub_root)

        def finish_scatter():
            for i, req in enumerate(local):
                piece = recvbuf[i * chunk : (i + 1) * chunk]
                if req.nbytes > 0:
                    yield from self.node.memcpy.copy(
                        None, None, nbytes=int(piece.size)
                    )
                if req.deliver is not None:
                    req.deliver(piece)
                else:
                    req.data = piece.copy()
                req.complete(
                    CommStatus(source=root_vrank, nbytes=int(piece.size))
                )

        self._spawn_completer(state, mreq, finish_scatter)

    def _start_split(self, state: _CollState) -> None:
        """Collective ``comm_split`` over the whole job.

        Every virtual rank contributes a (color, key) pair; the comm
        threads allgather the triples over the node communicator (real
        wire cost, like ``MPI_Comm_split``'s internal exchange), then
        each derives the identical grouping and registers it in the
        shared :class:`~repro.dcgn.groups.GroupTable` — which builds
        one node-level MPI sub-communicator per color.  Each entry
        completes carrying its group descriptor (``None`` for negative
        colors, mirroring ``MPI_UNDEFINED``).

        The color/key allgather is issued *nonblockingly* (its tag
        block claimed synchronously, like every staged collective) and
        resolved by a background completer, so the exchange hides
        behind kernel traffic instead of stalling the comm thread —
        the same overlap discipline the data collectives follow.
        """
        local = sorted(state.entries, key=lambda e: e.src_vrank)
        mine = np.zeros(3 * len(local), dtype=np.int64)
        for i, e in enumerate(local):
            mine[3 * i : 3 * i + 3] = (
                e.src_vrank,
                int(e.extra.get("color", -1)),
                int(e.extra.get("key", 0)),
            )
        recv = [
            np.empty(
                3 * len(self.rankmap.local_ranks(n)), dtype=np.int64
            )
            for n in range(self.mpi.size)
        ]
        mreq = self.mpi.iallgather(mine, recv)

        def finish_split():
            triples = []
            for buf in recv:
                for i in range(buf.size // 3):
                    triples.append(
                        (int(buf[3 * i]), int(buf[3 * i + 1]),
                         int(buf[3 * i + 2]))
                    )
            groups = self.groups.register_split(state.seq, triples)
            for e in state.entries:
                color = int(e.extra.get("color", -1))
                e.extra["group"] = groups.get(color)
                e.complete(CommStatus(source=-1, nbytes=0))

        self._spawn_completer(state, mreq, finish_split)

    # -- misc ------------------------------------------------------------
    def _bump(self, key: str) -> None:
        self.stats[key] = self.stats.get(key, 0) + 1
