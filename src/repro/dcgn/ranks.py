"""Virtual-rank assignment: the slots paradigm (paper §3.1, §3.2.3).

Ranks are assigned consecutively within a node — CPU-kernel threads
first, then (GPU 0, slot 0), (GPU 0, slot 1), …, (GPU 1, slot 0), … —
and in increasing order across successive nodes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from .config import DcgnConfig
from .errors import DcgnConfigError

__all__ = ["RankKind", "CpuRank", "GpuSlotRank", "RankMap"]

#: Wildcard source for DCGN receives.
ANY = -1


@dataclass(frozen=True)
class CpuRank:
    """A virtual rank bound to a CPU-kernel thread."""

    vrank: int
    node: int
    cpu_index: int  #: which CPU-kernel thread on the node


@dataclass(frozen=True)
class GpuSlotRank:
    """A virtual rank bound to one slot of one GPU."""

    vrank: int
    node: int
    gpu_index: int
    slot: int


RankKind = Union[CpuRank, GpuSlotRank]


class RankMap:
    """Bidirectional mapping between virtual ranks and resources."""

    def __init__(self, config: DcgnConfig) -> None:
        self.config = config
        self._info: List[RankKind] = []
        self._cpu_lookup: Dict[Tuple[int, int], int] = {}
        self._slot_lookup: Dict[Tuple[int, int, int], int] = {}
        vrank = 0
        for node_id, nc in enumerate(config.nodes):
            for c in range(nc.cpu_threads):
                self._info.append(CpuRank(vrank, node_id, c))
                self._cpu_lookup[(node_id, c)] = vrank
                vrank += 1
            for g in range(nc.gpus):
                for s in range(nc.slots_per_gpu):
                    self._info.append(GpuSlotRank(vrank, node_id, g, s))
                    self._slot_lookup[(node_id, g, s)] = vrank
                    vrank += 1
        self.size = vrank

    # -- queries -----------------------------------------------------------
    def info(self, vrank: int) -> RankKind:
        """Resource behind ``vrank``."""
        self._check(vrank)
        return self._info[vrank]

    def node_of(self, vrank: int) -> int:
        self._check(vrank)
        return self._info[vrank].node

    def is_cpu(self, vrank: int) -> bool:
        self._check(vrank)
        return isinstance(self._info[vrank], CpuRank)

    def is_gpu(self, vrank: int) -> bool:
        return not self.is_cpu(vrank)

    def cpu_rank(self, node: int, cpu_index: int) -> int:
        """vrank of a CPU-kernel thread."""
        try:
            return self._cpu_lookup[(node, cpu_index)]
        except KeyError:
            raise DcgnConfigError(
                f"no CPU-kernel thread {cpu_index} on node {node}"
            ) from None

    def slot_rank(self, node: int, gpu_index: int, slot: int) -> int:
        """vrank of (node, gpu, slot)."""
        try:
            return self._slot_lookup[(node, gpu_index, slot)]
        except KeyError:
            raise DcgnConfigError(
                f"no slot {slot} on GPU {gpu_index} of node {node}"
            ) from None

    def local_ranks(self, node: int) -> List[int]:
        """All vranks resident on ``node`` in ascending order."""
        return [r.vrank for r in self._info if r.node == node]

    def cpu_ranks(self, node: int | None = None) -> List[int]:
        """All CPU vranks (optionally restricted to one node)."""
        return [
            r.vrank
            for r in self._info
            if isinstance(r, CpuRank) and (node is None or r.node == node)
        ]

    def gpu_ranks(self, node: int | None = None) -> List[int]:
        """All GPU-slot vranks (optionally restricted to one node)."""
        return [
            r.vrank
            for r in self._info
            if isinstance(r, GpuSlotRank) and (node is None or r.node == node)
        ]

    def _check(self, vrank: int) -> None:
        if not (0 <= vrank < self.size):
            raise DcgnConfigError(
                f"virtual rank {vrank} out of range [0,{self.size})"
            )
