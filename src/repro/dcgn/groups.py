"""DCGN slot groups: sub-world communication scopes for kernels.

The paper's DCGN exposes one world of virtual ranks.  Slot groups carry
the MPI group/communicator concept through the DCGN stack: a
:class:`DcgnGroup` names an ordered subset of virtual ranks, and every
group gets its **own MPI sub-communicator at the node level** (derived
from the job's node communicator via
:meth:`~repro.mpi.communicator.Communicator.create`), its own collective
sequence space, and its own staging state in each comm thread — so
collectives on disjoint groups progress independently and overlap on
the wire, exactly like concurrent communicators in MPI.

Groups come from two places:

* **declared** — ``DcgnConfig(slot_groups={...})`` names groups up
  front; kernels fetch them by name (``ctx.group("row0")`` /
  ``ctx.comm.group(slot, "row0")``);
* **split** — kernels call the collective ``split(color, key)``
  (CPU: ``ctx.split``, GPU: ``ctx.comm.split``), the comm threads
  exchange the color/key pairs over the node communicator, and every
  color becomes a fresh group — ``MPI_Comm_split`` at the slot level.

The :class:`GroupTable` is shared by all of a job's comm threads;
whichever thread first sees a complete split registers the groups (all
threads compute identical data from the exchange, so registration is
deterministic and idempotent).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..mpi.communicator import Communicator, MpiContext
from ..mpi.group import Group as MpiGroup
from .errors import DcgnConfigError, DcgnError
from .ranks import RankMap

__all__ = ["DcgnGroup", "GroupTable", "WORLD_GID"]

#: gid of the implicit all-ranks group.
WORLD_GID = 0


@dataclass(frozen=True)
class DcgnGroup:
    """An ordered subset of a DCGN job's virtual ranks."""

    gid: int
    name: str
    vranks: Tuple[int, ...]

    def __post_init__(self) -> None:
        # O(1) membership/rank lookups: rank_of sits in per-collective
        # hot paths (entry sorting, gather/scatter assembly).
        object.__setattr__(
            self, "_index", {v: i for i, v in enumerate(self.vranks)}
        )

    @property
    def size(self) -> int:
        return len(self.vranks)

    def rank_of(self, vrank: int) -> int:
        """Group-local rank of ``vrank`` (raises if not a member)."""
        rank = self._index.get(vrank)
        if rank is None:
            raise DcgnError(
                f"vrank {vrank} is not a member of group {self.name!r}"
            )
        return rank

    def __contains__(self, vrank: int) -> bool:
        return vrank in self._index


class _GroupInfo:
    """Runtime view of one group: node footprint + MPI sub-communicator."""

    def __init__(
        self, group: DcgnGroup, rankmap: RankMap, subcomm: Communicator
    ) -> None:
        self.group = group
        self.subcomm = subcomm
        self._local: Dict[int, List[int]] = {}
        for v in group.vranks:
            self._local.setdefault(rankmap.node_of(v), []).append(v)
        #: Nodes hosting members, in sub-communicator rank order.
        self.nodes: List[int] = list(subcomm.placement)

    def local_vranks(self, node: int) -> List[int]:
        """Members on ``node``, ordered by group rank."""
        return self._local.get(node, [])

    def mpi_rank_of_node(self, node: int) -> int:
        return self.subcomm.rank_of_world(node)

    def ctx_for(self, node: int) -> MpiContext:
        return self.subcomm.ctx(self.subcomm.rank_of_world(node))


class GroupTable:
    """All groups of one DCGN job (shared across its comm threads)."""

    def __init__(self, rankmap: RankMap, node_comm: Communicator) -> None:
        self._rankmap = rankmap
        self._node_comm = node_comm
        self._infos: Dict[int, _GroupInfo] = {}
        self._by_name: Dict[str, DcgnGroup] = {}
        self._next_gid = WORLD_GID + 1
        #: split instance (world coll seq) → {color: gid}.
        self._splits: Dict[int, Dict[int, int]] = {}
        world = DcgnGroup(
            WORLD_GID, "world", tuple(range(rankmap.size))
        )
        self._infos[WORLD_GID] = _GroupInfo(world, rankmap, node_comm)
        self._by_name["world"] = world

    # -- registration ------------------------------------------------------
    def _register(self, name: str, vranks: Sequence[int]) -> DcgnGroup:
        seen = set()
        for v in vranks:
            if not (0 <= v < self._rankmap.size):
                raise DcgnConfigError(
                    f"group {name!r}: vrank {v} out of range "
                    f"[0,{self._rankmap.size})"
                )
            if v in seen:
                raise DcgnConfigError(
                    f"group {name!r}: duplicate vrank {v}"
                )
            seen.add(v)
        if not vranks:
            raise DcgnConfigError(f"group {name!r} is empty")
        gid = self._next_gid
        self._next_gid += 1
        group = DcgnGroup(gid, name, tuple(int(v) for v in vranks))
        nodes = sorted({self._rankmap.node_of(v) for v in group.vranks})
        subcomm = self._node_comm.create(MpiGroup(nodes))
        self._infos[gid] = _GroupInfo(group, self._rankmap, subcomm)
        return group

    def declare(self, name: str, vranks: Sequence[int]) -> DcgnGroup:
        """Register a config-declared named group."""
        if name in self._by_name:
            raise DcgnConfigError(f"duplicate slot group name {name!r}")
        group = self._register(name, vranks)
        self._by_name[name] = group
        return group

    def register_split(
        self, split_seq: int, triples: Sequence[Tuple[int, int, int]]
    ) -> Dict[int, DcgnGroup]:
        """Turn one split exchange's (vrank, color, key) triples into
        groups — idempotent per split instance, so every comm thread
        that processes the (identical) exchange sees the same groups.

        Members of each color are ordered by (key, vrank), mirroring
        ``MPI_Comm_split``; negative colors opt out.
        """
        existing = self._splits.get(split_seq)
        if existing is not None:
            return {
                color: self._infos[gid].group
                for color, gid in existing.items()
            }
        by_color: Dict[int, List[Tuple[int, int]]] = {}
        for vrank, color, key in triples:
            if color < 0:
                continue
            by_color.setdefault(color, []).append((key, vrank))
        out: Dict[int, DcgnGroup] = {}
        mapping: Dict[int, int] = {}
        for color in sorted(by_color):
            members = [v for _k, v in sorted(by_color[color])]
            group = self._register(
                f"split{split_seq}/{color}", members
            )
            out[color] = group
            mapping[color] = group.gid
        self._splits[split_seq] = mapping
        return out

    # -- queries -----------------------------------------------------------
    def by_name(self, name: str) -> DcgnGroup:
        try:
            return self._by_name[name]
        except KeyError:
            raise DcgnError(f"no slot group named {name!r}") from None

    def info(self, gid: int) -> _GroupInfo:
        try:
            return self._infos[gid]
        except KeyError:
            raise DcgnError(f"unknown group id {gid}") from None

    def group(self, gid: int) -> DcgnGroup:
        return self.info(gid).group

    def local_count(self, gid: int, node: int) -> int:
        """Group members resident on ``node`` (staging quorum)."""
        return len(self.info(gid).local_vranks(node))

    def release(self) -> None:
        """Free every group's derived sub-communicator (job teardown).

        The world group's "sub-communicator" is the node communicator
        itself — its owner releases it, not this table.
        """
        for info in self._infos.values():
            sub = info.subcomm
            if sub is not self._node_comm and not sub._freed:
                sub.free(force=True)
