"""DCGN runtime: job setup, kernel launching, supervision, shutdown.

The runtime plays the role of the paper's ``dcgn::init`` + kernel-launch
machinery: it validates the configuration, assigns virtual ranks, spawns
one communication thread per node and one GPU-kernel thread per
requested GPU, and exposes ``launch_cpu`` / ``launch_gpu``.

``run()`` drives the simulation until every kernel finishes, then shuts
the service threads down (the analogue of ``MPI_Finalize``).  A watchdog
converts hangs — e.g. the paper's §3.2.4 block-scheduling deadlock —
into :class:`GpuCommDeadlock`/:class:`DcgnTimeout` with diagnostics.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List, Optional, Sequence, Tuple

from ..gpusim.errors import GpuCommDeadlock
from ..gpusim.kernel import KernelHandle, LaunchConfig
from ..hw.cluster import Cluster
from ..mpi.communicator import Communicator
from ..sim.core import Event, Process, Simulator
from ..sim.sync import Signal
from .comm_thread import CommThread
from .config import DcgnConfig
from .cpu_api import CpuKernelContext
from .errors import DcgnConfigError, DcgnTimeout
from .gpu_thread import GpuKernelThread
from .groups import DcgnGroup, GroupTable
from .polling import PollPolicy
from .ranks import RankMap
from .windows import DcgnWindow, DcgnWindowTable

__all__ = ["DcgnRuntime"]


class DcgnRuntime:
    """One DCGN job on a simulated cluster."""

    def __init__(
        self,
        cluster: Cluster,
        config: DcgnConfig,
        policy_factory: Optional[Callable[[], PollPolicy]] = None,
        node_comm: Optional[Communicator] = None,
    ) -> None:
        config.validate_against(cluster)
        self.cluster = cluster
        self.config = config
        self.sim: Simulator = cluster.sim
        self.rankmap = RankMap(config)
        #: Cluster node hosting each local node index (identity unless
        #: ``config.node_ids`` places the job elsewhere).
        self.node_ids = config.cluster_node_ids()
        # One MPI rank per participating node (the DCGN process).  The
        # job's collective tuning steers this communicator's algorithm
        # selection, so DCGN-layer collectives ride the same engine —
        # and its backend decides whether staged collectives and window
        # operations run exact wire processes or the analytic pricer.
        # A scheduler (repro.serve) passes its own ``node_comm`` — the
        # job's sub-communicator of the shared fabric — so tag spaces
        # stay isolated per job; the runtime then does not own it.
        self._owns_node_comm = node_comm is None
        if node_comm is None:
            node_comm = Communicator(
                cluster,
                placement=list(self.node_ids),
                tuning=config.tuning,
                backend=config.backend,
            )
        else:
            if tuple(node_comm.placement) != self.node_ids:
                raise DcgnConfigError(
                    f"node_comm placement {tuple(node_comm.placement)} "
                    f"does not match the job's nodes {self.node_ids}"
                )
        self.node_comm = node_comm
        #: Slot-group registry: the world group, every group declared in
        #: ``config.slot_groups`` (each backed by its own node-level MPI
        #: sub-communicator), and any groups kernels later form via the
        #: collective ``split``.  Shared by all comm threads.
        self.groups = GroupTable(self.rankmap, self.node_comm)
        for gname, vranks in config.slot_groups:
            self.groups.declare(gname, vranks)
        #: One-sided window registry (``config.windows`` plus any
        #: :meth:`create_window` calls before ``run``); shared by all
        #: comm threads so any origin can reach any target region.
        self.windows = DcgnWindowTable(self.rankmap, self.node_comm)
        for wname, spec in config.windows:
            self.windows.declare(wname, spec)
        #: Per-node kick signals (CPU request activity wakes GPU pollers).
        self.kicks: List[Signal] = [
            Signal(self.sim, name=f"dcgn.kick{n}")
            for n in range(config.n_nodes)
        ]
        self.comm_threads: List[CommThread] = [
            CommThread(
                self.sim,
                cluster.nodes[self.node_ids[n]],
                self.node_comm.ctx(n),
                self.rankmap,
                kick=self.kicks[n],
                groups=self.groups,
                windows=self.windows,
            )
            for n in range(config.n_nodes)
        ]
        self.gpu_threads: Dict[Tuple[int, int], GpuKernelThread] = {}
        for n, nc in enumerate(config.nodes):
            for g in range(nc.gpus):
                self.gpu_threads[(n, g)] = GpuKernelThread(
                    self.sim,
                    self.comm_threads[n],
                    cluster.nodes[self.node_ids[n]].gpus[g],
                    self.rankmap,
                    gpu_index=g,
                    slots=nc.slots_per_gpu,
                    kick=self.kicks[n],
                    policy=policy_factory() if policy_factory else None,
                )
        self._kernel_procs: List[Process] = []
        self._gpu_handles: List[KernelHandle] = []
        self._launchers: List[Process] = []

    # -- introspection -----------------------------------------------------
    @property
    def size(self) -> int:
        """Total virtual ranks."""
        return self.rankmap.size

    def group(self, name: str) -> DcgnGroup:
        """A declared slot group by name (``"world"`` always exists)."""
        return self.groups.by_name(name)

    def window(self, name: str) -> "DcgnWindow":
        """A declared one-sided window by name."""
        return self.windows.by_name(name)

    def create_window(self, name: str, spec) -> "DcgnWindow":
        """Declare a window before launching kernels (same forms as
        ``DcgnConfig(windows=...)``)."""
        return self.windows.declare(name, spec)

    def cpu_context(self, vrank: int) -> CpuKernelContext:
        """Build the kernel context for a CPU virtual rank."""
        info = self.rankmap.info(vrank)
        if not self.rankmap.is_cpu(vrank):
            raise DcgnConfigError(f"vrank {vrank} is not a CPU rank")
        return CpuKernelContext(
            self.sim,
            vrank,
            self.comm_threads[info.node],
            self.rankmap,
        )

    # -- launching ---------------------------------------------------------
    def launch_cpu(
        self,
        fn: Callable[..., Generator[Event, Any, Any]],
        args: tuple = (),
        ranks: Optional[Sequence[int]] = None,
    ) -> List[Process]:
        """Run ``fn(ctx, *args)`` as a CPU kernel on each given CPU rank.

        Defaults to every CPU rank in the job.
        """
        targets = (
            list(ranks) if ranks is not None else self.rankmap.cpu_ranks()
        )
        procs = []
        for vrank in targets:
            ctx = self.cpu_context(vrank)
            p = self.sim.process(fn(ctx, *args), name=f"dcgn.cpu{vrank}")
            procs.append(p)
        self._kernel_procs.extend(procs)
        return procs

    def launch_gpu(
        self,
        fn: Callable[..., Generator[Event, Any, Any]],
        args: tuple = (),
        config: Optional[LaunchConfig] = None,
        gpus: Optional[Sequence[Tuple[int, int]]] = None,
    ) -> None:
        """Launch ``fn`` as a communicating kernel on the given GPUs.

        ``gpus`` is a list of (node, gpu_index); default: every requested
        GPU.  The default grid runs one block per slot.
        """
        targets = (
            list(gpus) if gpus is not None else sorted(self.gpu_threads)
        )

        for key in targets:
            if key not in self.gpu_threads:
                raise DcgnConfigError(f"GPU {key} is not part of the job")
            gt = self.gpu_threads[key]

            def launcher(gt=gt):
                handle = yield from gt.launch(fn, config=config, args=args)
                self._gpu_handles.append(handle)
                yield handle.done

            self._launchers.append(
                self.sim.process(
                    launcher(), name=f"dcgn.launch{key[0]}.{key[1]}"
                )
            )

    # -- execution -----------------------------------------------------------
    def run(self, max_time: float = 30.0) -> "DcgnReport":
        """Drive the simulation to completion (or watchdog expiry)."""
        self.sim.run(until=max_time, detect_deadlock=False)
        unfinished = [p for p in self._kernel_procs if p.is_alive]
        unfinished_launch = [p for p in self._launchers if p.is_alive]
        if unfinished or unfinished_launch:
            self._diagnose_hang(unfinished, unfinished_launch)
        # All kernels done: wind the service threads down.
        for ct in self.comm_threads:
            ct.shutdown()
        for gt in self.gpu_threads.values():
            gt.shutdown()
        end = self.sim.run(until=max_time * 2, detect_deadlock=False)
        still = [
            ct.name for ct in self.comm_threads if ct.proc.is_alive
        ] + [gt.name for gt in self.gpu_threads.values() if gt.proc.is_alive]
        if still:
            raise DcgnTimeout(
                f"service threads did not drain: {', '.join(still)}"
            )
        return DcgnReport(self)

    def drain(self) -> Generator[Event, Any, None]:
        """In-simulation wind-down: join the kernels, then stop the
        service threads (the co-tenant analogue of :meth:`run`'s
        shutdown phase).

        :meth:`run` drives the whole simulation itself, which only
        works for a dedicated cluster.  A DCGN job *embedded* in a
        larger simulation — placed by the serving scheduler next to
        other jobs — yields from this instead (typically as the job's
        ``finalize``), so the wind-down happens at the right simulated
        time without monopolizing the event loop.
        """
        for p in self._kernel_procs + self._launchers:
            yield p
        for ct in self.comm_threads:
            ct.shutdown()
        for gt in self.gpu_threads.values():
            gt.shutdown()
        for ct in self.comm_threads:
            if ct.proc.is_alive:
                yield ct.proc
        for gt in self.gpu_threads.values():
            if gt.proc.is_alive:
                yield gt.proc

    def shutdown(self) -> None:
        """Release the job's communicator state (driver-level; after
        :meth:`run` or :meth:`drain`).

        Frees every slot group's sub-communicator, severs the DCGN
        windows' underlying MPI windows, and — when the runtime built
        its own node communicator — releases it.  Without this, a
        scheduler churning thousands of DCGN jobs on one cluster
        accumulates matching stores and schedule engines without
        bound.  A node communicator passed in by a scheduler is left
        for its owner to free.
        """
        self.windows.release()
        self.groups.release()
        if self._owns_node_comm and not self.node_comm._freed:
            self.node_comm.release(force=True)

    def _diagnose_hang(
        self, unfinished: List[Process], unfinished_launch: List[Process]
    ) -> None:
        gpu_state = [
            gt.describe_state()
            for gt in self.gpu_threads.values()
            if gt.busy
        ]
        # Detect the paper's §3.2.4 hazard: a kernel with unscheduled
        # blocks while every resident block is blocked on communication.
        for gt in self.gpu_threads.values():
            for h in gt._handles:
                if h.finished:
                    continue
                dev = h.device
                waiting_for_sm = dev.sm_slots.queued
                if waiting_for_sm > 0:
                    raise GpuCommDeadlock(
                        "kernel requires more co-resident blocks than the "
                        "device supports (paper §3.2.4): "
                        + h.describe_blocked()
                    )
        names = [p.name for p in unfinished] + [
            p.name for p in unfinished_launch
        ]
        detail = "; ".join(gpu_state) if gpu_state else "no GPU activity"
        raise DcgnTimeout(
            f"watchdog expired with unfinished kernels: {', '.join(names)} "
            f"({detail})"
        )


class DcgnReport:
    """Post-run access to results and overhead statistics."""

    def __init__(self, runtime: DcgnRuntime) -> None:
        self.runtime = runtime
        self.finished_at = runtime.sim.now

    def cpu_results(self) -> List[Any]:
        """Return values of CPU kernels in launch order."""
        return [p.value for p in self.runtime._kernel_procs]

    def gpu_block_results(self) -> List[List[Any]]:
        """Per-launch block results."""
        return [h.block_results for h in self.runtime._gpu_handles]

    def comm_stats(self) -> Dict[str, int]:
        """Aggregated comm-thread counters across nodes."""
        out: Dict[str, int] = {}
        for ct in self.runtime.comm_threads:
            for k, v in ct.stats.items():
                out[k] = out.get(k, 0) + v
        return out

    def polling_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-GPU-thread polling counters (ablation A1)."""
        return {
            gt.name: {
                "polls": gt.polls,
                "empty_polls": gt.empty_polls,
                "pcie_probes": gt.device.pcie.probe_count,
            }
            for gt in self.runtime.gpu_threads.values()
        }
