"""MPI-compatibility adapter: run MPI-style programs on DCGN (§3.1).

The paper argues that porting MPI codes to DCGN is mechanical: "those
codes would have to be completely rewritten for DPMs, and the added task
of a few find-and-replaces was minimal by comparison."  This adapter
makes the claim literal for CPU kernels: it exposes the *simulated MPI*
context's call signatures (``send(buf, dest, tag)``, ``recv(buf, source,
tag)``, ``bcast(buf, root)``, …) on top of a DCGN
:class:`~repro.dcgn.cpu_api.CpuKernelContext`, so a program written
against :class:`repro.mpi.MpiContext` runs under DCGN unchanged.

Semantic differences (documented, checked):

* DCGN has no message tags — matching is by (source, arrival order).
  The adapter accepts tags but requires programs not to rely on
  out-of-order tag selection; by default a tag used for *reordering*
  (receiving a later tag first) will simply mismatch data, so strict
  mode (default) raises if two outstanding receives from the same
  source carry different tags.
* ``ANY_SOURCE`` maps to DCGN's ``ANY``.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Sequence

import numpy as np

from ..mpi.status import ANY_SOURCE, ANY_TAG, Status
from ..sim.core import Event
from .cpu_api import CpuKernelContext
from .errors import CommViolation
from .ranks import ANY
from .requests import CommStatus

__all__ = ["DcgnMpiAdapter"]


class DcgnMpiAdapter:
    """Wraps a DCGN CPU-kernel context in the simulated-MPI call shapes."""

    def __init__(self, ctx: CpuKernelContext, strict: bool = True) -> None:
        self._ctx = ctx
        self._strict = strict
        self._outstanding_tags: Dict[int, int] = {}

    # -- identity ---------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._ctx.rank

    @property
    def size(self) -> int:
        return self._ctx.size

    @property
    def sim(self):
        return self._ctx.sim

    # -- helpers ------------------------------------------------------------
    def _check_tag(self, source: int, tag: int) -> None:
        if not self._strict or tag in (ANY_TAG,):
            return
        prev = self._outstanding_tags.get(source)
        if prev is not None and prev != tag:
            raise CommViolation(
                "DCGN has no tags: cannot select messages from the same "
                f"source by tag ({prev} vs {tag}); restructure the "
                "receive order (paper §3.1: porting is mechanical only "
                "for tag-free matching)"
            )
        self._outstanding_tags[source] = tag

    @staticmethod
    def _status(st: CommStatus, tag: int) -> Status:
        return Status(source=st.source, tag=tag, nbytes=st.nbytes)

    # -- point-to-point (MPI signatures) ------------------------------------
    def send(
        self, buf, dest: int, tag: int = 0
    ) -> Generator[Event, Any, None]:
        yield from self._ctx.send(dest, buf)

    def recv(
        self,
        buf,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        src = ANY if source == ANY_SOURCE else source
        self._check_tag(source, tag)
        st = yield from self._ctx.recv(src, buf)
        self._outstanding_tags.pop(source, None)
        return self._status(st, tag)

    def sendrecv(
        self,
        sendbuf,
        dest: int,
        recvbuf,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        src = ANY if source == ANY_SOURCE else source
        st = yield from self._ctx.sendrecv(dest, sendbuf, src, recvbuf)
        return self._status(st, recvtag)

    def sendrecv_replace(
        self,
        buf,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ) -> Generator[Event, Any, Status]:
        status = yield from self.sendrecv(
            buf, dest, buf, source, sendtag, recvtag
        )
        return status

    # -- collectives (MPI signatures) ----------------------------------------
    def barrier(self) -> Generator[Event, Any, None]:
        yield from self._ctx.barrier()

    def bcast(self, buf, root: int = 0) -> Generator[Event, Any, None]:
        yield from self._ctx.broadcast(root, buf)

    def reduce(
        self, sendbuf, recvbuf, op=None, root: int = 0
    ) -> Generator[Event, Any, None]:
        name = getattr(op, "value", op) or "sum"
        yield from self._ctx.reduce(root, sendbuf, recvbuf, op=name)

    def allreduce(
        self, sendbuf, recvbuf, op=None
    ) -> Generator[Event, Any, None]:
        name = getattr(op, "value", op) or "sum"
        yield from self._ctx.allreduce(sendbuf, recvbuf, op=name)

    def gather(
        self,
        sendbuf,
        recvbufs: Optional[Sequence] = None,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """MPI-style gather: the root's per-rank buffers are concatenated
        into DCGN's single flat receive buffer and split back after."""
        if self.rank == root:
            if recvbufs is None:
                raise CommViolation("root needs recv buffers for gather")
            flat = np.zeros(
                sum(int(np.asarray(b).nbytes) for b in recvbufs),
                dtype=np.uint8,
            )
            yield from self._ctx.gather(root, sendbuf, flat)
            offset = 0
            for b in recvbufs:
                arr = np.asarray(b)
                view = arr.view(np.uint8).reshape(-1)
                view[:] = flat[offset : offset + view.size]
                offset += view.size
        else:
            yield from self._ctx.gather(root, sendbuf)

    def scatter(
        self,
        sendbufs: Optional[Sequence],
        recvbuf,
        root: int = 0,
    ) -> Generator[Event, Any, None]:
        """MPI-style scatter: per-rank buffers concatenated for DCGN."""
        if self.rank == root:
            if sendbufs is None:
                raise CommViolation("root needs send buffers for scatter")
            flat = np.concatenate(
                [np.asarray(b).view(np.uint8).reshape(-1) for b in sendbufs]
            )
            yield from self._ctx.scatter(root, recvbuf, flat)
        else:
            yield from self._ctx.scatter(root, recvbuf)
