"""DCGN runtime error types."""

from __future__ import annotations

__all__ = [
    "DcgnError",
    "DcgnConfigError",
    "DcgnTimeout",
    "CollectiveMismatch",
    "CommViolation",
]


class DcgnError(Exception):
    """Base class for DCGN runtime errors."""


class DcgnConfigError(DcgnError):
    """Invalid job configuration (slots, threads, placement)."""


class DcgnTimeout(DcgnError):
    """The runtime watchdog expired before all kernels completed.

    Usually indicates a communication deadlock — e.g. the paper's §3.2.4
    block-scheduling hazard, or mismatched collective participation.
    """


class CollectiveMismatch(DcgnError):
    """Participants disagreed on the collective's kind, root, or size."""


class CommViolation(DcgnError):
    """API misuse: e.g. host memory passed to a GPU-sourced send
    (paper: GPU communication must use global memory), or a user thread
    that DCGN doesn't know about issuing communication."""
