"""DCGN windows: one-sided memory regions addressable by virtual rank.

The paper's DCGN sources *two-sided* communication from data-parallel
code; windows take the next step and make it **matching-free**.  A
:class:`DcgnWindow` gives every virtual rank a typed region of host
memory on its node; any kernel — CPU thread or GPU slot — can ``put``,
``get`` or ``accumulate`` against any other rank's region, and no
request is ever staged on the *target* node: the origin's comm thread
drives a one-sided :class:`~repro.mpi.rma.Window` operation whose bytes
land in the target region by RDMA, while the target comm thread keeps
servicing its own kernels undisturbed.  (Contrast with p2p, where the
target's comm thread must match the message and the receiver must have
posted a recv — both gone here.)

Layout: each node owns one registered buffer concatenating its local
ranks' regions in virtual-rank order; the node-level MPI window is
created over those buffers in the permanently-exposed ``passive_all``
mode (the comm thread — the node's sole MPI caller — provides the
ordering an epoch would).  ``locate`` translates a virtual rank into
(node, element offset) for the comm thread's wire operation.

Windows are declared up front — ``DcgnConfig(windows={...})`` or
``DcgnRuntime.create_window`` — because registration is collective over
the node communicator, exactly like ``MPI_Win_create``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple, Union

import numpy as np

from ..mpi.communicator import Communicator
from ..mpi.rma import Window
from .errors import DcgnConfigError, DcgnError
from .ranks import RankMap

__all__ = ["DcgnWindow", "DcgnWindowTable", "normalize_window_spec"]

#: Accepted declaration forms: element count (float64 implied) or
#: (count, dtype-name).
WindowSpec = Union[int, Tuple[int, str]]


def normalize_window_spec(spec: WindowSpec) -> Tuple[int, str]:
    """Canonicalize a window declaration to (count, dtype name)."""
    if isinstance(spec, (int, np.integer)):
        count, dtype = int(spec), "float64"
    else:
        count, dtype = int(spec[0]), str(spec[1])
    if count < 1:
        raise DcgnConfigError("window needs at least one element per rank")
    np.dtype(dtype)  # raises on unknown names
    return count, dtype


class DcgnWindow:
    """One named window: ``count`` elements of ``dtype`` per virtual rank."""

    def __init__(
        self,
        wid: int,
        name: str,
        count: int,
        dtype: str,
        rankmap: RankMap,
        node_comm: Communicator,
    ) -> None:
        self.wid = wid
        self.name = name
        self.count = count
        self.dtype = np.dtype(dtype)
        self._rankmap = rankmap
        #: vrank → element offset of its region in its node's buffer.
        self._base: Dict[int, int] = {}
        bufs: List[np.ndarray] = []
        for node in range(node_comm.size):
            local = rankmap.local_ranks(node)
            for i, v in enumerate(local):
                self._base[v] = i * count
            bufs.append(np.zeros(max(1, len(local)) * count, dtype=self.dtype))
        self.win = Window(
            node_comm, bufs, name=f"dcgn.win.{name}", passive_all=True
        )

    @property
    def bytes_per_rank(self) -> int:
        return self.count * self.dtype.itemsize

    def locate(self, vrank: int) -> Tuple[int, int]:
        """(node, element offset) of ``vrank``'s region."""
        base = self._base.get(vrank)
        if base is None:
            raise DcgnError(
                f"vrank {vrank} has no region in window {self.name!r}"
            )
        return self._rankmap.node_of(vrank), base

    def region(self, vrank: int) -> np.ndarray:
        """``vrank``'s region (host memory; driver/tests view)."""
        node, base = self.locate(vrank)
        return self.win.region(node)[base : base + self.count]

    def check_range(self, vrank: int, offset: int, count: int) -> None:
        """Validate an access of ``count`` elements at ``offset``."""
        if offset < 0 or offset + count > self.count:
            raise DcgnError(
                f"window {self.name!r}: [{offset}, {offset + count}) "
                f"outside the {self.count}-element region of vrank {vrank}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<DcgnWindow {self.name!r} {self.dtype}x{self.count}/rank>"
        )


class DcgnWindowTable:
    """All windows of one DCGN job (shared across its comm threads)."""

    def __init__(self, rankmap: RankMap, node_comm: Communicator) -> None:
        self._rankmap = rankmap
        self._node_comm = node_comm
        self._by_name: Dict[str, DcgnWindow] = {}
        self._next_wid = 0

    def declare(self, name: str, spec: WindowSpec) -> DcgnWindow:
        if name in self._by_name:
            raise DcgnConfigError(f"duplicate window name {name!r}")
        count, dtype = normalize_window_spec(spec)
        win = DcgnWindow(
            self._next_wid, name, count, dtype, self._rankmap,
            self._node_comm,
        )
        self._next_wid += 1
        self._by_name[name] = win
        return win

    def by_name(self, name: str) -> DcgnWindow:
        try:
            return self._by_name[name]
        except KeyError:
            raise DcgnError(f"no window named {name!r}") from None

    def release(self) -> None:
        """Sever every window's underlying MPI window (job teardown).

        DCGN windows live for the whole job — there is no collective
        window free at the kernel level — so teardown marks them freed
        the way a force-free of the node communicator would, letting
        the communicator release cleanly afterwards."""
        for win in self._by_name.values():
            win.win._freed = True
