"""DCGN — Distributed Computing on GPU Networks (the paper's system).

Quick tour::

    from repro.sim import Simulator
    from repro.hw import build_cluster, paper_cluster
    from repro.dcgn import DcgnConfig, DcgnRuntime

    sim = Simulator()
    cluster = build_cluster(sim, paper_cluster(nodes=2))
    cfg = DcgnConfig.homogeneous(2, cpu_threads=1, gpus=1, slots_per_gpu=1)
    rt = DcgnRuntime(cluster, cfg)

    def cpu_kernel(ctx):
        ...  # ctx.send / ctx.recv / ctx.barrier / ...
        yield from ctx.barrier()

    def gpu_kernel(ctx):
        comm = ctx.comm  # GpuCommApi: slot-indexed dcgn::gpu::* calls
        yield from comm.barrier(slot=0)

    rt.launch_cpu(cpu_kernel)
    rt.launch_gpu(gpu_kernel)
    report = rt.run()
"""

from .comm_thread import CommThread
from .config import CollectiveTuning, DcgnConfig, NodeConfig
from .cpu_api import CpuGroupComm, CpuKernelContext, DcgnRequestHandle
from .errors import (
    CollectiveMismatch,
    CommViolation,
    DcgnConfigError,
    DcgnError,
    DcgnTimeout,
)
from .gpu_api import GpuCommApi, GpuGroupComm, GpuRequestHandle
from .groups import DcgnGroup, GroupTable, WORLD_GID
from .mpi_compat import DcgnMpiAdapter
from .gpu_thread import GpuKernelThread
from .polling import AdaptiveBurstPolicy, FixedIntervalPolicy, PollPolicy
from .queues import WorkQueue, sleep_poll_wait
from .ranks import ANY, CpuRank, GpuSlotRank, RankMap
from .requests import CommRequest, CommStatus
from .runtime import DcgnReport, DcgnRuntime
from .windows import DcgnWindow, DcgnWindowTable

__all__ = [
    "CollectiveTuning",
    "DcgnConfig",
    "NodeConfig",
    "RankMap",
    "CpuRank",
    "GpuSlotRank",
    "ANY",
    "CommRequest",
    "CommStatus",
    "WorkQueue",
    "sleep_poll_wait",
    "PollPolicy",
    "FixedIntervalPolicy",
    "AdaptiveBurstPolicy",
    "CommThread",
    "GpuKernelThread",
    "CpuKernelContext",
    "CpuGroupComm",
    "DcgnRequestHandle",
    "GpuCommApi",
    "GpuGroupComm",
    "GpuRequestHandle",
    "DcgnGroup",
    "GroupTable",
    "WORLD_GID",
    "DcgnMpiAdapter",
    "DcgnRuntime",
    "DcgnReport",
    "DcgnWindow",
    "DcgnWindowTable",
    "DcgnError",
    "DcgnConfigError",
    "DcgnTimeout",
    "CollectiveMismatch",
    "CommViolation",
]
