"""DCGN job configuration: CPU-kernel threads, GPUs, slots — and the
collective-algorithm tuning the job's comm threads run with.

Collective algorithms
---------------------
All GPU-sourced communication funnels through one comm thread per node,
so the algorithm the underlying MPI layer picks dominates collective
performance.  The menu (implementations in :mod:`repro.mpi.algorithms`):

========== ===========================================================
allreduce  ``reduce_bcast`` (binomial reduce + bcast, the seed fixed
           algorithm), ``recursive_doubling`` (⌈log2 P⌉ full-size
           rounds; small messages), ``ring`` (reduce-scatter +
           allgather, 2·(P−1)/P volumes; large messages),
           ``hierarchical`` (intra/inter-domain phases on fragmented
           oversubscribed fabrics)
allgather  ``ring`` (P−1 block hops, bandwidth-optimal, any P),
           ``recursive_doubling`` (⌈log2 P⌉ rounds; small blocks on
           power-of-two communicators), ``bruck`` (⌈log2 P⌉ rounds;
           small blocks, any P), ``hierarchical`` (gather → leader
           ring → broadcast on fragmented oversubscribed fabrics)
alltoall   ``shift`` (send to rank+k / recv from rank−k),
           ``pairwise`` (XOR partners; power-of-two communicators),
           ``bruck`` (⌈log2 P⌉ packed rounds; small blocks, any P),
           ``hierarchical`` (domain super-bucket exchange)
bcast      ``binomial`` (seed), ``hierarchical`` (domain leaders),
           ``pipelined`` (segmented chain; large payloads)
reduce     ``binomial`` (seed), ``rabenseifner`` (reduce-scatter +
           gather; large vectors, any communicator size)
========== ===========================================================

Selection is per call, by message size × communicator size ×
placement, with thresholds from
:class:`~repro.mpi.algorithms.CollectiveTuning`.  By default —
``tuning=None`` — the node-level communicator *autotunes* the
thresholds from the cluster's fabric topology and ``IbParams``
(:mod:`repro.mpi.algorithms.autotune`, cached per fabric shape), so a
DCGN job on an oversubscribed fat tree or a multi-rail cluster gets
topology-appropriate crossovers with no configuration.
``force_allreduce`` / ``force_allgather`` / ``force_alltoall`` /
``force_bcast`` pin one algorithm by name, disabling adaptivity for
that primitive.

Pass a ``CollectiveTuning`` as ``DcgnConfig(nodes, tuning=...)`` (or to
``DcgnConfig.homogeneous``) to override; the runtime hands it to the
node-level MPI communicator that the comm threads drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional, Sequence, Tuple

from ..hw.cluster import Cluster
from ..mpi.algorithms import CollectiveTuning
from .errors import DcgnConfigError

__all__ = ["NodeConfig", "DcgnConfig", "CollectiveTuning"]


@dataclass(frozen=True)
class NodeConfig:
    """Resources one node contributes to a DCGN job.

    Paper §3.2.3: "Every Node_n is given Cn + (Gn × Sn) ranks, where Cn is
    the number of CPU-kernel threads requested, Gn is the number of GPUs
    requested, and Sn is the number of slots per GPU requested."
    """

    cpu_threads: int = 0
    gpus: int = 0
    slots_per_gpu: int = 1

    def __post_init__(self) -> None:
        if self.cpu_threads < 0:
            raise DcgnConfigError("cpu_threads must be >= 0")
        if self.gpus < 0:
            raise DcgnConfigError("gpus must be >= 0")
        if self.gpus > 0 and self.slots_per_gpu < 1:
            raise DcgnConfigError("each requested GPU needs at least 1 slot")
        if self.cpu_threads == 0 and self.gpus == 0:
            raise DcgnConfigError("node contributes no ranks")

    @property
    def ranks(self) -> int:
        """Cn + Gn*Sn."""
        return self.cpu_threads + self.gpus * self.slots_per_gpu


@dataclass(frozen=True)
class DcgnConfig:
    """Per-node configuration of a whole DCGN job.

    ``tuning`` overrides the collective-algorithm selection thresholds
    of the node-level MPI layer the comm threads use (see the module
    docstring for the menu and threshold semantics).

    ``slot_groups`` declares named groups of virtual ranks up front
    (``{"row0": [0, 1, 2], ...}``): the runtime builds each one a
    dedicated node-level MPI sub-communicator with its own tag space,
    and kernels fetch the group handle by name (CPU
    ``ctx.group("row0")``, GPU ``ctx.comm.group(slot, "row0")``) to run
    collectives scoped to the group.  Kernels can also form groups
    dynamically with the collective ``split(color, key)``.

    ``windows`` declares one-sided windows
    (``{"halo": count}`` — ``count`` float64 elements per virtual rank
    — or ``{"halo": (count, "uint8")}`` for an explicit dtype): every
    virtual rank gets a registered region, and kernels move data into
    any other rank's region matching-free (CPU ``ctx.put(...)``, GPU
    ``ctx.comm.put(slot, ...)``; see :mod:`repro.dcgn.windows`).

    ``node_ids`` maps the job's local node indices onto *cluster* node
    ids (``node_ids[i]`` hosts ``nodes[i]``).  Omitted, the job runs on
    nodes ``0..n-1`` — the single-tenant default.  A scheduler placing
    jobs on arbitrary node sets (:mod:`repro.serve`) passes the nodes
    it reserved.

    ``backend`` selects the timing engine of the node-level MPI layer
    the comm threads drive: ``"exact"`` (per-op wire processes, the
    default), ``"analytic"`` (fast-path pricing of staged collectives
    and window operations — same algorithm selection, same data, far
    fewer simulator events) or ``"pricing"`` (analytic timing with no
    data movement, for pure scaling sweeps).
    """

    nodes: tuple
    tuning: Optional[CollectiveTuning] = None
    slot_groups: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
    windows: Tuple[Tuple[str, Tuple[int, str]], ...] = ()
    backend: str = "exact"
    node_ids: Optional[Tuple[int, ...]] = None

    def __init__(
        self,
        nodes: Sequence[NodeConfig],
        tuning: Optional[CollectiveTuning] = None,
        slot_groups: Optional[Mapping[str, Sequence[int]]] = None,
        windows: Optional[Mapping[str, object]] = None,
        backend: str = "exact",
        node_ids: Optional[Sequence[int]] = None,
    ) -> None:
        if not nodes:
            raise DcgnConfigError("job needs at least one node")
        object.__setattr__(self, "nodes", tuple(nodes))
        object.__setattr__(self, "tuning", tuning)
        object.__setattr__(self, "backend", str(backend))
        ids: Optional[Tuple[int, ...]] = None
        if node_ids is not None:
            ids = tuple(int(n) for n in node_ids)
            if len(ids) != len(nodes):
                raise DcgnConfigError(
                    f"node_ids names {len(ids)} nodes; config has "
                    f"{len(nodes)}"
                )
            if len(set(ids)) != len(ids):
                raise DcgnConfigError("node_ids contains duplicates")
        object.__setattr__(self, "node_ids", ids)
        groups: Tuple[Tuple[str, Tuple[int, ...]], ...] = ()
        if slot_groups:
            groups = tuple(
                (str(name), tuple(int(v) for v in vranks))
                for name, vranks in slot_groups.items()
            )
        object.__setattr__(self, "slot_groups", groups)
        wins: Tuple[Tuple[str, Tuple[int, str]], ...] = ()
        if windows:
            from .windows import normalize_window_spec

            wins = tuple(
                (str(name), normalize_window_spec(spec))
                for name, spec in windows.items()
            )
        object.__setattr__(self, "windows", wins)

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        cpu_threads: int = 0,
        gpus: int = 0,
        slots_per_gpu: int = 1,
        tuning: Optional[CollectiveTuning] = None,
        slot_groups: Optional[Mapping[str, Sequence[int]]] = None,
        windows: Optional[Mapping[str, object]] = None,
        backend: str = "exact",
        node_ids: Optional[Sequence[int]] = None,
    ) -> "DcgnConfig":
        """Same configuration on every node (the paper's usual setup)."""
        return cls(
            [
                NodeConfig(
                    cpu_threads=cpu_threads,
                    gpus=gpus,
                    slots_per_gpu=slots_per_gpu,
                )
            ]
            * n_nodes,
            tuning=tuning,
            slot_groups=slot_groups,
            windows=windows,
            backend=backend,
            node_ids=node_ids,
        )

    @property
    def total_ranks(self) -> int:
        return sum(nc.ranks for nc in self.nodes)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def cluster_node_ids(self) -> Tuple[int, ...]:
        """Cluster node id hosting each local node index."""
        if self.node_ids is not None:
            return self.node_ids
        return tuple(range(len(self.nodes)))

    def validate_against(self, cluster: Cluster) -> None:
        """Check the cluster can host this configuration."""
        if len(self.nodes) > cluster.n_nodes:
            raise DcgnConfigError(
                f"config names {len(self.nodes)} nodes; cluster has "
                f"{cluster.n_nodes}"
            )
        ids = self.cluster_node_ids()
        for nid in ids:
            if not (0 <= nid < cluster.n_nodes):
                raise DcgnConfigError(
                    f"node id {nid} out of range [0,{cluster.n_nodes})"
                )
        for i, nc in enumerate(self.nodes):
            node = cluster.nodes[ids[i]]
            if nc.gpus > len(node.gpus):
                raise DcgnConfigError(
                    f"node {i}: requested {nc.gpus} GPUs, has {len(node.gpus)}"
                )
            if nc.gpus > 0:
                # Slots are bounded by concurrently executing blocks
                # (paper §3.1: "The maximum number of slots is equal to the
                # maximum number of threads that are simultaneously
                # executed" — at our block granularity, resident blocks).
                max_slots = node.gpus[0].max_resident_blocks
                if nc.slots_per_gpu > max_slots:
                    raise DcgnConfigError(
                        f"node {i}: {nc.slots_per_gpu} slots/GPU exceeds "
                        f"max resident blocks {max_slots}"
                    )
