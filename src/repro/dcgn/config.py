"""DCGN job configuration: CPU-kernel threads, GPUs, and slots per node."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..hw.cluster import Cluster
from .errors import DcgnConfigError

__all__ = ["NodeConfig", "DcgnConfig"]


@dataclass(frozen=True)
class NodeConfig:
    """Resources one node contributes to a DCGN job.

    Paper §3.2.3: "Every Node_n is given Cn + (Gn × Sn) ranks, where Cn is
    the number of CPU-kernel threads requested, Gn is the number of GPUs
    requested, and Sn is the number of slots per GPU requested."
    """

    cpu_threads: int = 0
    gpus: int = 0
    slots_per_gpu: int = 1

    def __post_init__(self) -> None:
        if self.cpu_threads < 0:
            raise DcgnConfigError("cpu_threads must be >= 0")
        if self.gpus < 0:
            raise DcgnConfigError("gpus must be >= 0")
        if self.gpus > 0 and self.slots_per_gpu < 1:
            raise DcgnConfigError("each requested GPU needs at least 1 slot")
        if self.cpu_threads == 0 and self.gpus == 0:
            raise DcgnConfigError("node contributes no ranks")

    @property
    def ranks(self) -> int:
        """Cn + Gn*Sn."""
        return self.cpu_threads + self.gpus * self.slots_per_gpu


@dataclass(frozen=True)
class DcgnConfig:
    """Per-node configuration of a whole DCGN job."""

    nodes: tuple

    def __init__(self, nodes: Sequence[NodeConfig]) -> None:
        if not nodes:
            raise DcgnConfigError("job needs at least one node")
        object.__setattr__(self, "nodes", tuple(nodes))

    @classmethod
    def homogeneous(
        cls,
        n_nodes: int,
        cpu_threads: int = 0,
        gpus: int = 0,
        slots_per_gpu: int = 1,
    ) -> "DcgnConfig":
        """Same configuration on every node (the paper's usual setup)."""
        return cls(
            [
                NodeConfig(
                    cpu_threads=cpu_threads,
                    gpus=gpus,
                    slots_per_gpu=slots_per_gpu,
                )
            ]
            * n_nodes
        )

    @property
    def total_ranks(self) -> int:
        return sum(nc.ranks for nc in self.nodes)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    def validate_against(self, cluster: Cluster) -> None:
        """Check the cluster can host this configuration."""
        if len(self.nodes) > cluster.n_nodes:
            raise DcgnConfigError(
                f"config names {len(self.nodes)} nodes; cluster has "
                f"{cluster.n_nodes}"
            )
        for i, nc in enumerate(self.nodes):
            node = cluster.nodes[i]
            if nc.gpus > len(node.gpus):
                raise DcgnConfigError(
                    f"node {i}: requested {nc.gpus} GPUs, has {len(node.gpus)}"
                )
            if nc.gpus > 0:
                # Slots are bounded by concurrently executing blocks
                # (paper §3.1: "The maximum number of slots is equal to the
                # maximum number of threads that are simultaneously
                # executed" — at our block granularity, resident blocks).
                max_slots = node.gpus[0].max_resident_blocks
                if nc.slots_per_gpu > max_slots:
                    raise DcgnConfigError(
                        f"node {i}: {nc.slots_per_gpu} slots/GPU exceeds "
                        f"max resident blocks {max_slots}"
                    )
