"""Sleep-based polling policies for GPU-kernel threads (paper §3.2.3).

"The CPU must poll the GPU at a certain interval since the GPU can't
signal the CPU.  Tradeoffs in performance are required because
high-frequency polling strains the CPU whereas low-frequency polling
increases message latency."

Two policies implement that trade-off:

* :class:`FixedIntervalPolicy` — poll every T µs, unconditionally.
* :class:`AdaptiveBurstPolicy` — poll every T µs while idle, but after
  observing activity (or an external *kick* from correlated host-side
  traffic) poll at a much shorter interval for a few rounds.  This is
  what lets mixed CPU+GPU barriers complete in ~50 µs while GPU-only
  barriers pay the full polling interval (Table 1's pattern).

Ablation A1 sweeps the interval and compares the two policies.
"""

from __future__ import annotations

from ..hw.params import DcgnParams

__all__ = ["PollPolicy", "FixedIntervalPolicy", "AdaptiveBurstPolicy", "make_policy"]


class PollPolicy:
    """Decides the delay before the next mailbox poll."""

    def next_delay_us(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError

    def observe(self, found_work: bool) -> None:
        """Feed back whether the last poll found anything."""

    def kicked(self) -> None:
        """External wake-up (host-side request activity)."""

    @property
    def supports_kick(self) -> bool:
        return False


class FixedIntervalPolicy(PollPolicy):
    """Poll at a constant interval regardless of traffic."""

    def __init__(self, interval_us: float) -> None:
        if interval_us <= 0:
            raise ValueError("interval must be positive")
        self.interval_us = interval_us

    def next_delay_us(self) -> float:
        return self.interval_us

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedIntervalPolicy({self.interval_us} µs)"


class AdaptiveBurstPolicy(PollPolicy):
    """Long interval while idle; short bursts after kicks or finds.

    Two burst sources:

    * **kicks** — correlated CPU-request activity on the node (this is
      what makes Table 1's mixed CPU+GPU barriers an order of magnitude
      faster than GPU-only ones);
    * **finds** — the poller's own recent harvest.  Back-to-back request
      sequences (N-body's eight consecutive broadcasts per step) ride
      the burst, while request patterns separated by more than the burst
      window (ping-pong round trips, barrier iterations separated by
      work) pay the full interval — reconciling the paper's fast
      application collectives with its slow stand-alone micro-benchmark
      numbers.
    """

    def __init__(
        self,
        interval_us: float,
        burst_us: float,
        burst_polls: int,
    ) -> None:
        if interval_us <= 0 or burst_us <= 0:
            raise ValueError("intervals must be positive")
        if burst_us > interval_us:
            raise ValueError("burst interval must not exceed idle interval")
        if burst_polls < 1:
            raise ValueError("burst_polls must be >= 1")
        self.interval_us = interval_us
        self.burst_us = burst_us
        self.burst_polls = burst_polls
        self._budget = 0  # remaining fast polls

    def next_delay_us(self) -> float:
        return self.burst_us if self._budget > 0 else self.interval_us

    def observe(self, found_work: bool) -> None:
        if found_work:
            self._budget = self.burst_polls
        elif self._budget > 0:
            self._budget -= 1

    def kicked(self) -> None:
        self._budget = self.burst_polls

    @property
    def supports_kick(self) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AdaptiveBurstPolicy({self.interval_us} µs, "
            f"burst {self.burst_us} µs × {self.burst_polls})"
        )


def make_policy(params: DcgnParams) -> PollPolicy:
    """Build the configured polling policy."""
    if params.gpu_poll_kick:
        return AdaptiveBurstPolicy(
            interval_us=params.gpu_poll_interval_us,
            burst_us=params.gpu_poll_burst_us,
            burst_polls=params.gpu_burst_polls,
        )
    return FixedIntervalPolicy(params.gpu_poll_interval_us)
