"""The DCGN API available inside CPU kernels (paper Figure 3, bottom).

CPU kernels are generator functions ``fn(ctx, *args)`` receiving a
:class:`CpuKernelContext`.  Communication calls funnel requests into the
node's communication thread through the thread-safe work queue and wait
for completion with sleep-based polling — the two cost sources the paper
blames for DCGN's small-message overhead (§5.2).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional, Union

import numpy as np

from ..hw.memory import HostBuffer
from ..mpi.datatypes import payload_array
from ..sim.core import Event, Simulator, us
from .comm_thread import CommThread
from .errors import CommViolation
from .groups import DcgnGroup
from .queues import sleep_poll_wait
from .ranks import ANY, RankMap
from .requests import CommRequest, CommStatus

__all__ = ["CpuKernelContext", "CpuGroupComm", "DcgnRequestHandle"]

HostPayload = Union[np.ndarray, HostBuffer]


def _check_reduce_op_name(op) -> str:
    """Validate an accumulate op at kernel issue time (catchable),
    instead of letting ``ReduceOp(op)`` blow up the comm thread."""
    from ..mpi.datatypes import ReduceOp

    try:
        return ReduceOp(str(op)).value
    except ValueError:
        raise CommViolation(f"unknown accumulate op {op!r}") from None


class DcgnRequestHandle:
    """Handle for an asynchronous DCGN operation (dcgn async send/recv).

    The paper (§5.1) mentions DCGN exposes "asynchronous sends and
    receives" beneath the fused send/recv.  ``wait`` observes completion
    through the same sleep-based polling as the blocking calls; ``test``
    is a cheap flag check.
    """

    def __init__(self, ctx: "CpuKernelContext", req: CommRequest) -> None:
        self._ctx = ctx
        self.req = req

    def test(self) -> bool:
        """True once the runtime completed the operation."""
        return self.req.done is not None and self.req.done.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """``yield from`` until complete; returns the CommStatus."""
        result = yield from sleep_poll_wait(
            self._ctx.sim,
            self.req.done,
            self._ctx._params.dcgn.cpu_wait_poll_us,
        )
        self.req.stamp("returned", self._ctx.sim.now)
        return result


class CpuKernelContext:
    """Execution context of one CPU-kernel thread (one virtual rank)."""

    def __init__(
        self,
        sim: Simulator,
        vrank: int,
        comm: CommThread,
        rankmap: RankMap,
    ) -> None:
        self.sim = sim
        self.vrank = vrank
        self._comm = comm
        self._rankmap = rankmap
        self._params = comm.params
        self._coll_seq = 0
        #: Per-group collective sequence counters (shared across every
        #: handle this context creates for the same group, so repeated
        #: ``group(...)`` lookups never desynchronize the staging).
        self._group_seqs: Dict[int, int] = {}

    # -- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This kernel's virtual rank (dcgn::getRank())."""
        return self.vrank

    @property
    def size(self) -> int:
        """Total virtual ranks in the job."""
        return self._rankmap.size

    @property
    def node_id(self) -> int:
        return self._comm.node.node_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<CpuKernelContext vrank={self.vrank}>"

    # -- local work ---------------------------------------------------------
    def compute(self, seconds: float) -> Generator[Event, Any, None]:
        """Model CPU-kernel computation time."""
        if seconds < 0:
            raise ValueError("negative compute time")
        if seconds > 0:
            yield self.sim.timeout(seconds)

    # -- plumbing ----------------------------------------------------------
    def _issue(self, req: CommRequest) -> Generator[Event, Any, Any]:
        """Charge request overhead, enqueue, and sleep-poll for completion."""
        req.done = self.sim.event(name=f"req{req.req_id}.done")
        req.stamp("issued", self.sim.now)
        yield self.sim.timeout(us(self._params.cpu.request_overhead_us))
        yield from self._comm.enqueue_from_cpu(req)
        req.stamp("enqueued", self.sim.now)
        result = yield from sleep_poll_wait(
            self.sim, req.done, self._params.dcgn.cpu_wait_poll_us
        )
        req.stamp("returned", self.sim.now)
        return result

    @staticmethod
    def _array(buf: HostPayload, what: str) -> np.ndarray:
        arr = payload_array(buf)
        if arr is None:
            raise CommViolation(f"{what} requires an array payload")
        return arr

    def _check_peer(self, peer: int) -> None:
        if peer != ANY:
            self._rankmap.info(peer)  # raises if out of range

    # -- point-to-point ------------------------------------------------------
    def send(
        self,
        dest: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::send — blocking send of host memory to a virtual rank."""
        self._check_peer(dest)
        arr = self._array(buf, "send")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)
        req = CommRequest(
            op="send",
            src_vrank=self.vrank,
            peer=dest,
            nbytes=n,
            data=arr.copy(),
        )
        yield from self._issue(req)

    def recv(
        self,
        source: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, CommStatus]:
        """dcgn::recv — blocking receive; ``source`` may be ``ANY``."""
        self._check_peer(source)
        arr = self._array(buf, "recv")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)

        def deliver(data: np.ndarray) -> None:
            dview = arr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        req = CommRequest(
            op="recv",
            src_vrank=self.vrank,
            peer=source,
            nbytes=n,
            deliver=deliver,
        )
        status = yield from self._issue(req)
        return status

    # -- asynchronous point-to-point (paper §5.1) --------------------------
    def _issue_async(
        self, req: CommRequest
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        req.done = self.sim.event(name=f"req{req.req_id}.done")
        req.stamp("issued", self.sim.now)
        yield self.sim.timeout(us(self._params.cpu.request_overhead_us))
        yield from self._comm.enqueue_from_cpu(req)
        req.stamp("enqueued", self.sim.now)
        return DcgnRequestHandle(self, req)

    def isend(
        self,
        dest: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Asynchronous send; payload snapshotted at issue time."""
        self._check_peer(dest)
        arr = self._array(buf, "isend")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)
        req = CommRequest(
            op="send",
            src_vrank=self.vrank,
            peer=dest,
            nbytes=n,
            data=arr.copy(),
        )
        handle = yield from self._issue_async(req)
        return handle

    def irecv(
        self,
        source: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Asynchronous receive into ``buf``."""
        self._check_peer(source)
        arr = self._array(buf, "irecv")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)

        def deliver(data: np.ndarray) -> None:
            dview = arr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        req = CommRequest(
            op="recv",
            src_vrank=self.vrank,
            peer=source,
            nbytes=n,
            deliver=deliver,
        )
        handle = yield from self._issue_async(req)
        return handle

    def sendrecv(
        self,
        dest: int,
        sendbuf: HostPayload,
        source: int,
        recvbuf: HostPayload,
    ) -> Generator[Event, Any, CommStatus]:
        """Combined send+recv: both requests enqueued before waiting.

        The paper notes (§5.1, matrix multiplication) that a fused
        send/recv beats two separate calls because the runtime needs only
        one round of polling for the pair.
        """
        self._check_peer(dest)
        self._check_peer(source)
        sarr = self._array(sendbuf, "sendrecv")
        rarr = self._array(recvbuf, "sendrecv")
        sreq = CommRequest(
            op="send",
            src_vrank=self.vrank,
            peer=dest,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            done=self.sim.event(),
        )

        def deliver(data: np.ndarray) -> None:
            dview = rarr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        rreq = CommRequest(
            op="recv",
            src_vrank=self.vrank,
            peer=source,
            nbytes=int(rarr.nbytes),
            deliver=deliver,
            done=self.sim.event(),
        )
        yield self.sim.timeout(us(self._params.cpu.request_overhead_us))
        yield from self._comm.enqueue_from_cpu(sreq)
        yield from self._comm.enqueue_from_cpu(rreq)
        yield from sleep_poll_wait(
            self.sim, sreq.done, self._params.dcgn.cpu_wait_poll_us
        )
        status = yield from sleep_poll_wait(
            self.sim, rreq.done, self._params.dcgn.cpu_wait_poll_us
        )
        return status

    # -- one-sided windows (matching-free) ---------------------------------
    def _check_window(
        self, win: str, target: int, arr: np.ndarray, offset: int, what: str
    ) -> None:
        """Validate a one-sided access at issue time (kernel-side): the
        window exists, dtypes match, and the target range is in bounds
        — mistakes surface as catchable kernel errors instead of a
        silent cast or a dead comm thread."""
        table = self._comm.windows
        if table is None:
            raise CommViolation("this job declares no windows")
        window = table.by_name(str(win))
        if target == ANY or not (0 <= target < self._rankmap.size):
            raise CommViolation(
                f"{what} needs a concrete target virtual rank, got "
                f"{target} (one-sided ops have no wildcard matching)"
            )
        window.locate(target)  # raises if the vrank has no region
        if arr.dtype != window.dtype:
            raise CommViolation(
                f"{what}: buffer dtype {arr.dtype} does not match window "
                f"{window.name!r} dtype {window.dtype}"
            )
        window.check_range(target, int(offset), arr.size)

    def _rma_put_request(
        self, win: str, dest: int, buf: HostPayload, offset: int, op=None
    ) -> CommRequest:
        self._check_peer(dest)
        arr = self._array(buf, "put")
        self._check_window(win, dest, arr, offset, "put")
        extra = {"win": str(win), "offset": int(offset)}
        kind = "rma_put"
        if op is not None:
            kind = "rma_accumulate"
            extra["reduce_op"] = _check_reduce_op_name(op)
        return CommRequest(
            op=kind,
            src_vrank=self.vrank,
            peer=dest,
            nbytes=int(arr.nbytes),
            data=arr.copy(),
            extra=extra,
        )

    def put(
        self,
        win: str,
        dest: int,
        buf: HostPayload,
        offset: int = 0,
    ) -> Generator[Event, Any, None]:
        """dcgn::put — one-sided write of ``buf`` into virtual rank
        ``dest``'s region of window ``win`` at element ``offset``.

        No matching receive exists anywhere: the local comm thread
        drives an RDMA write into the target's registered region and
        the *target* comm thread is never involved.  Returns once the
        data is visible at the target (remote completion)."""
        yield from self._issue(self._rma_put_request(win, dest, buf, offset))

    def iput(
        self,
        win: str,
        dest: int,
        buf: HostPayload,
        offset: int = 0,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Asynchronous one-sided put (payload snapshotted at issue);
        ``wait`` guarantees remote completion."""
        handle = yield from self._issue_async(
            self._rma_put_request(win, dest, buf, offset)
        )
        return handle

    def accumulate(
        self,
        win: str,
        dest: int,
        buf: HostPayload,
        op: str = "sum",
        offset: int = 0,
    ) -> Generator[Event, Any, None]:
        """dcgn::accumulate — one-sided read-modify-write into ``dest``'s
        window region (``"replace"`` gives an ordered overwrite).
        Same-pair accumulates apply in program order."""
        yield from self._issue(
            self._rma_put_request(win, dest, buf, offset, op=op)
        )

    def _rma_get_request(
        self, win: str, source: int, buf: HostPayload, offset: int
    ) -> CommRequest:
        self._check_peer(source)
        arr = self._array(buf, "get")
        if not arr.flags["C_CONTIGUOUS"]:
            # deliver writes through reshape(-1): a non-contiguous view
            # would receive into a silent temporary copy.
            raise CommViolation("get needs a C-contiguous result buffer")
        self._check_window(win, source, arr, offset, "get")

        def deliver(data: np.ndarray) -> None:
            flat = arr.reshape(-1)
            src = data.reshape(-1)[: flat.size]
            flat[: src.size] = src

        return CommRequest(
            op="rma_get",
            src_vrank=self.vrank,
            peer=source,
            nbytes=int(arr.nbytes),
            deliver=deliver,
            extra={"win": str(win), "offset": int(offset)},
        )

    def get(
        self,
        win: str,
        source: int,
        buf: HostPayload,
        offset: int = 0,
    ) -> Generator[Event, Any, CommStatus]:
        """dcgn::get — one-sided read of virtual rank ``source``'s
        window region into ``buf``; the target never posts anything."""
        status = yield from self._issue(
            self._rma_get_request(win, source, buf, offset)
        )
        return status

    def iget(
        self,
        win: str,
        source: int,
        buf: HostPayload,
        offset: int = 0,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Asynchronous one-sided get into ``buf`` (read after wait)."""
        handle = yield from self._issue_async(
            self._rma_get_request(win, source, buf, offset)
        )
        return handle

    # -- nonblocking collectives -------------------------------------------
    def iallreduce(
        self,
        sendbuf: HostPayload,
        recvbuf: HostPayload,
        op: str = "sum",
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking dcgn::allReduce: issue and keep computing.

        The comm thread stages, combines and progresses the collective
        in the background; ``recvbuf`` is valid once the handle's
        ``wait`` returns.  Collective sequence numbers are claimed at
        issue time, so blocking and nonblocking collectives may be
        mixed as long as every rank issues them in the same order.
        """
        sarr = self._array(sendbuf, "iallreduce")
        rarr = self._array(recvbuf, "iallreduce")

        def deliver(data: np.ndarray) -> None:
            rarr[...] = data.reshape(rarr.shape)

        req = CommRequest(
            op="allreduce",
            src_vrank=self.vrank,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            deliver=deliver,
            extra={"coll_seq": self._next_coll(), "reduce_op": op},
        )
        handle = yield from self._issue_async(req)
        return handle

    def ibroadcast(
        self,
        root: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking dcgn::broadcast from virtual rank ``root``."""
        self._check_peer(root)
        arr = self._array(buf, "ibroadcast")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)
        extra = {"coll_seq": self._next_coll()}
        if self.vrank == root:
            req = CommRequest(
                op="bcast",
                src_vrank=self.vrank,
                root=root,
                nbytes=n,
                data=arr.copy(),
                extra=extra,
            )
        else:

            def deliver(data: np.ndarray) -> None:
                dview = arr.view(np.uint8).reshape(-1)
                sview = data.view(np.uint8).reshape(-1)
                m = min(dview.size, sview.size)
                dview[:m] = sview[:m]

            req = CommRequest(
                op="bcast",
                src_vrank=self.vrank,
                root=root,
                nbytes=n,
                deliver=deliver,
                extra=extra,
            )
        handle = yield from self._issue_async(req)
        return handle

    def ibarrier(self) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking job-wide barrier."""
        req = CommRequest(
            op="barrier",
            src_vrank=self.vrank,
            extra={"coll_seq": self._next_coll()},
        )
        handle = yield from self._issue_async(req)
        return handle

    # -- collectives -------------------------------------------------------
    def _next_coll(self) -> int:
        seq = self._coll_seq
        self._coll_seq += 1
        return seq

    def barrier(self) -> Generator[Event, Any, None]:
        """dcgn::barrier across every virtual rank in the job."""
        req = CommRequest(
            op="barrier",
            src_vrank=self.vrank,
            extra={"coll_seq": self._next_coll()},
        )
        yield from self._issue(req)

    def broadcast(
        self,
        root: int,
        buf: HostPayload,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::broadcast from virtual rank ``root``."""
        self._check_peer(root)
        arr = self._array(buf, "broadcast")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)
        extra = {"coll_seq": self._next_coll()}
        if self.vrank == root:
            req = CommRequest(
                op="bcast",
                src_vrank=self.vrank,
                root=root,
                nbytes=n,
                data=arr.copy(),
                extra=extra,
            )
        else:

            def deliver(data: np.ndarray) -> None:
                dview = arr.view(np.uint8).reshape(-1)
                sview = data.view(np.uint8).reshape(-1)
                m = min(dview.size, sview.size)
                dview[:m] = sview[:m]

            req = CommRequest(
                op="bcast",
                src_vrank=self.vrank,
                root=root,
                nbytes=n,
                deliver=deliver,
                extra=extra,
            )
        yield from self._issue(req)

    def allreduce(
        self,
        sendbuf: HostPayload,
        recvbuf: HostPayload,
        op: str = "sum",
    ) -> Generator[Event, Any, None]:
        """dcgn::allReduce with elementwise ``op``."""
        sarr = self._array(sendbuf, "allreduce")
        rarr = self._array(recvbuf, "allreduce")

        def deliver(data: np.ndarray) -> None:
            rarr[...] = data.reshape(rarr.shape)

        req = CommRequest(
            op="allreduce",
            src_vrank=self.vrank,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            deliver=deliver,
            extra={"coll_seq": self._next_coll(), "reduce_op": op},
        )
        yield from self._issue(req)

    def reduce(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
        op: str = "sum",
    ) -> Generator[Event, Any, None]:
        """dcgn::reduce to virtual rank ``root``."""
        self._check_peer(root)
        sarr = self._array(sendbuf, "reduce")
        deliver = None
        if self.vrank == root:
            if recvbuf is None:
                raise CommViolation("root needs a recv buffer for reduce")
            rarr = self._array(recvbuf, "reduce")

            def deliver(data: np.ndarray) -> None:
                rarr[...] = data.reshape(rarr.shape)

        req = CommRequest(
            op="reduce",
            src_vrank=self.vrank,
            root=root,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            deliver=deliver,
            extra={"coll_seq": self._next_coll(), "reduce_op": op},
        )
        yield from self._issue(req)

    def _gather_request(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload],
    ) -> CommRequest:
        self._check_peer(root)
        sarr = self._array(sendbuf, "gather")
        chunk = int(sarr.nbytes)
        deliver = None
        if self.vrank == root:
            if recvbuf is None:
                raise CommViolation("root needs a recv buffer for gather")
            rarr = self._array(recvbuf, "gather")

            def deliver(data: np.ndarray) -> None:
                dview = rarr.view(np.uint8).reshape(-1)
                sview = data.view(np.uint8).reshape(-1)
                m = min(dview.size, sview.size)
                dview[:m] = sview[:m]

        return CommRequest(
            op="gather",
            src_vrank=self.vrank,
            root=root,
            nbytes=chunk,
            data=sarr.copy(),
            deliver=deliver,
            extra={"coll_seq": self._next_coll(), "chunk": chunk},
        )

    def gather(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gather — equal chunks from every rank to ``root``."""
        yield from self._issue(self._gather_request(root, sendbuf, recvbuf))

    def igather(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking gather: issue and keep computing (the comm
        thread already progresses the MPI phase asynchronously)."""
        handle = yield from self._issue_async(
            self._gather_request(root, sendbuf, recvbuf)
        )
        return handle

    def _scatter_request(
        self,
        root: int,
        recvbuf: HostPayload,
        sendbuf: Optional[HostPayload],
    ) -> CommRequest:
        self._check_peer(root)
        rarr = self._array(recvbuf, "scatter")
        chunk = int(rarr.nbytes)

        def deliver(data: np.ndarray) -> None:
            dview = rarr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        data = None
        if self.vrank == root:
            if sendbuf is None:
                raise CommViolation("root needs a send buffer for scatter")
            sarr = self._array(sendbuf, "scatter")
            data = sarr.copy()
        return CommRequest(
            op="scatter",
            src_vrank=self.vrank,
            root=root,
            nbytes=chunk,
            data=data,
            deliver=deliver,
            extra={"coll_seq": self._next_coll(), "chunk": chunk},
        )

    def scatter(
        self,
        root: int,
        recvbuf: HostPayload,
        sendbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::scatter — equal chunks from ``root`` to every rank."""
        yield from self._issue(self._scatter_request(root, recvbuf, sendbuf))

    def iscatter(
        self,
        root: int,
        recvbuf: HostPayload,
        sendbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking scatter: issue and keep computing."""
        handle = yield from self._issue_async(
            self._scatter_request(root, recvbuf, sendbuf)
        )
        return handle

    # -- slot groups -------------------------------------------------------
    def split(
        self, color: int, key: int = 0
    ) -> Generator[Event, Any, Optional["CpuGroupComm"]]:
        """Collective ``comm_split`` over every virtual rank in the job.

        All ranks must call it (in the same collective order); ranks
        sharing a ``color`` get a :class:`CpuGroupComm` over the new
        group, ordered by (key, vrank); a negative color opts out and
        returns ``None``.
        """
        req = CommRequest(
            op="split",
            src_vrank=self.vrank,
            extra={
                "coll_seq": self._next_coll(),
                "color": int(color),
                "key": int(key),
            },
        )
        yield from self._issue(req)
        group = req.extra.get("group")
        if group is None:
            return None
        return CpuGroupComm(self, group)

    def group(self, name: str) -> "CpuGroupComm":
        """Handle for a slot group declared in ``DcgnConfig``."""
        group = self._comm.groups.by_name(name)
        if self.vrank not in group:
            raise CommViolation(
                f"vrank {self.vrank} is not a member of group {name!r}"
            )
        return CpuGroupComm(self, group)


class CpuGroupComm:
    """Slot-group communication scope for a CPU kernel.

    Returned by :meth:`CpuKernelContext.split` /
    :meth:`CpuKernelContext.group`.  Collectives issued here are scoped
    to the group: the comm thread stages them against the group's local
    membership, runs the MPI phase on the group's own node
    sub-communicator (own tag space), and progresses them independently
    of world collectives — concurrent collectives on disjoint groups
    overlap on the wire.  ``root`` arguments are **group-local ranks**,
    as in MPI.  Each group has its own collective ordering: every
    member must issue the group's collectives in the same order, but
    no order is required *between* groups.
    """

    def __init__(self, ctx: CpuKernelContext, group: DcgnGroup) -> None:
        self._ctx = ctx
        self.group = group

    # -- identity ----------------------------------------------------------
    @property
    def rank(self) -> int:
        """This kernel's rank within the group."""
        return self.group.rank_of(self._ctx.vrank)

    @property
    def size(self) -> int:
        return self.group.size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CpuGroupComm {self.group.name!r} "
            f"rank={self.rank}/{self.size}>"
        )

    # -- plumbing ----------------------------------------------------------
    def _next_coll(self) -> int:
        seqs = self._ctx._group_seqs
        seq = seqs.get(self.group.gid, 0)
        seqs[self.group.gid] = seq + 1
        return seq

    def _extra(self, **kw) -> dict:
        return {
            "coll_seq": self._next_coll(),
            "gid": self.group.gid,
            **kw,
        }

    def _root_vrank(self, root: int) -> int:
        if not (0 <= root < self.group.size):
            raise CommViolation(
                f"group root {root} out of range [0,{self.group.size})"
            )
        return self.group.vranks[root]

    # -- collectives -------------------------------------------------------
    def barrier(self) -> Generator[Event, Any, None]:
        """Barrier across the group's members."""
        req = CommRequest(
            op="barrier", src_vrank=self._ctx.vrank, extra=self._extra()
        )
        yield from self._ctx._issue(req)

    def ibarrier(self) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking group barrier."""
        req = CommRequest(
            op="barrier", src_vrank=self._ctx.vrank, extra=self._extra()
        )
        handle = yield from self._ctx._issue_async(req)
        return handle

    def _bcast_request(self, root: int, buf, nbytes) -> CommRequest:
        root_vrank = self._root_vrank(root)
        arr = self._ctx._array(buf, "broadcast")
        n = int(nbytes) if nbytes is not None else int(arr.nbytes)
        if self._ctx.vrank == root_vrank:
            return CommRequest(
                op="bcast", src_vrank=self._ctx.vrank, root=root_vrank,
                nbytes=n, data=arr.copy(), extra=self._extra(),
            )

        def deliver(data: np.ndarray) -> None:
            dview = arr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        return CommRequest(
            op="bcast", src_vrank=self._ctx.vrank, root=root_vrank,
            nbytes=n, deliver=deliver, extra=self._extra(),
        )

    def broadcast(
        self, root: int, buf: HostPayload, nbytes: Optional[int] = None
    ) -> Generator[Event, Any, None]:
        """Broadcast from group rank ``root`` to the group."""
        yield from self._ctx._issue(self._bcast_request(root, buf, nbytes))

    def ibroadcast(
        self, root: int, buf: HostPayload, nbytes: Optional[int] = None
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking group broadcast."""
        handle = yield from self._ctx._issue_async(
            self._bcast_request(root, buf, nbytes)
        )
        return handle

    def _allreduce_request(self, sendbuf, recvbuf, op: str) -> CommRequest:
        sarr = self._ctx._array(sendbuf, "allreduce")
        rarr = self._ctx._array(recvbuf, "allreduce")

        def deliver(data: np.ndarray) -> None:
            rarr[...] = data.reshape(rarr.shape)

        return CommRequest(
            op="allreduce",
            src_vrank=self._ctx.vrank,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            deliver=deliver,
            extra=self._extra(reduce_op=op),
        )

    def allreduce(
        self, sendbuf: HostPayload, recvbuf: HostPayload, op: str = "sum"
    ) -> Generator[Event, Any, None]:
        """Allreduce across the group's members."""
        yield from self._ctx._issue(
            self._allreduce_request(sendbuf, recvbuf, op)
        )

    def iallreduce(
        self, sendbuf: HostPayload, recvbuf: HostPayload, op: str = "sum"
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking group allreduce."""
        handle = yield from self._ctx._issue_async(
            self._allreduce_request(sendbuf, recvbuf, op)
        )
        return handle

    def reduce(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
        op: str = "sum",
    ) -> Generator[Event, Any, None]:
        """Reduce to group rank ``root``."""
        root_vrank = self._root_vrank(root)
        sarr = self._ctx._array(sendbuf, "reduce")
        deliver = None
        if self._ctx.vrank == root_vrank:
            if recvbuf is None:
                raise CommViolation("root needs a recv buffer for reduce")
            rarr = self._ctx._array(recvbuf, "reduce")

            def deliver(data: np.ndarray) -> None:
                rarr[...] = data.reshape(rarr.shape)

        req = CommRequest(
            op="reduce",
            src_vrank=self._ctx.vrank,
            root=root_vrank,
            nbytes=int(sarr.nbytes),
            data=sarr.copy(),
            deliver=deliver,
            extra=self._extra(reduce_op=op),
        )
        yield from self._ctx._issue(req)

    def _gather_request(self, root, sendbuf, recvbuf) -> CommRequest:
        root_vrank = self._root_vrank(root)
        sarr = self._ctx._array(sendbuf, "gather")
        chunk = int(sarr.nbytes)
        deliver = None
        if self._ctx.vrank == root_vrank:
            if recvbuf is None:
                raise CommViolation("root needs a recv buffer for gather")
            rarr = self._ctx._array(recvbuf, "gather")

            def deliver(data: np.ndarray) -> None:
                dview = rarr.view(np.uint8).reshape(-1)
                sview = data.view(np.uint8).reshape(-1)
                m = min(dview.size, sview.size)
                dview[:m] = sview[:m]

        return CommRequest(
            op="gather",
            src_vrank=self._ctx.vrank,
            root=root_vrank,
            nbytes=chunk,
            data=sarr.copy(),
            deliver=deliver,
            extra=self._extra(chunk=chunk),
        )

    def gather(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, None]:
        """Gather equal chunks to group rank ``root`` (group order)."""
        yield from self._ctx._issue(
            self._gather_request(root, sendbuf, recvbuf)
        )

    def igather(
        self,
        root: int,
        sendbuf: HostPayload,
        recvbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking group gather."""
        handle = yield from self._ctx._issue_async(
            self._gather_request(root, sendbuf, recvbuf)
        )
        return handle

    def _scatter_request(self, root, recvbuf, sendbuf) -> CommRequest:
        root_vrank = self._root_vrank(root)
        rarr = self._ctx._array(recvbuf, "scatter")
        chunk = int(rarr.nbytes)

        def deliver(data: np.ndarray) -> None:
            dview = rarr.view(np.uint8).reshape(-1)
            sview = data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size)
            dview[:m] = sview[:m]

        data = None
        if self._ctx.vrank == root_vrank:
            if sendbuf is None:
                raise CommViolation("root needs a send buffer for scatter")
            data = self._ctx._array(sendbuf, "scatter").copy()
        return CommRequest(
            op="scatter",
            src_vrank=self._ctx.vrank,
            root=root_vrank,
            nbytes=chunk,
            data=data,
            deliver=deliver,
            extra=self._extra(chunk=chunk),
        )

    def scatter(
        self,
        root: int,
        recvbuf: HostPayload,
        sendbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, None]:
        """Scatter equal chunks from group rank ``root`` (group order)."""
        yield from self._ctx._issue(
            self._scatter_request(root, recvbuf, sendbuf)
        )

    def iscatter(
        self,
        root: int,
        recvbuf: HostPayload,
        sendbuf: Optional[HostPayload] = None,
    ) -> Generator[Event, Any, DcgnRequestHandle]:
        """Nonblocking group scatter."""
        handle = yield from self._ctx._issue_async(
            self._scatter_request(root, recvbuf, sendbuf)
        )
        return handle
