"""The GPU-kernel thread: launch, poll, relay, complete (paper §3.2.3).

"DCGN threads that control a GPU execute kernels on the GPU, monitor the
GPU for communication requests, transfer memory between the CPU and GPU,
and funnel communication requests from GPU kernels to the communication
thread."

The polling loop is the paper's sleep-based polling system.  One
iteration:

1. sleep per the polling policy (a *kick* — host-side request activity —
   may cut the sleep short when the adaptive policy is active);
2. PCIe **probe** of the mailbox region (status flags);
3. if requests are posted: PCIe **read** of the descriptors, then for
   payload-bearing requests a PCIe read of the payload, then relay into
   the comm thread's work queue;
4. for each in-flight request whose completion fired: PCIe **write** of
   the result payload (receives) and of the completion flag.

This is exactly the "three separate communications with the source GPU"
of §5.2 that make GPU-sourced messaging expensive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional

import numpy as np

from ..gpusim.device import GpuDevice
from ..gpusim.kernel import BlockContext, KernelHandle, LaunchConfig, launch_kernel
from ..gpusim.mailbox import MailboxRequest, SlotMailboxes
from ..gpusim.memory import DeviceBuffer
from ..sim.core import Event, Simulator, us
from ..sim.primitives import AnyOf
from ..sim.sync import Signal
from .comm_thread import CommThread
from .errors import DcgnError
from .gpu_api import GpuCommApi
from .polling import PollPolicy, make_policy
from .ranks import ANY, RankMap
from .requests import CommRequest, CommStatus

__all__ = ["GpuKernelThread"]

#: Bytes written over PCIe to flip one completion flag.
_FLAG_BYTES = 8


@dataclass
class _Inflight:
    """A harvested mailbox request awaiting comm-thread completion."""

    mbox: SlotMailboxes
    mreq: MailboxRequest
    creq: CommRequest
    #: Device buffer to write results into (recv/bcast/allreduce).
    dbuf: Optional[DeviceBuffer]


class GpuKernelThread:
    """Host thread owning one GPU of a DCGN job."""

    def __init__(
        self,
        sim: Simulator,
        comm: CommThread,
        device: GpuDevice,
        rankmap: RankMap,
        gpu_index: int,
        slots: int,
        kick: Signal,
        policy: Optional[PollPolicy] = None,
    ) -> None:
        self.sim = sim
        self.comm = comm
        self.device = device
        self.rankmap = rankmap
        self.gpu_index = gpu_index
        self.slots = slots
        self.kick = kick
        self.params = comm.params
        self.policy = policy if policy is not None else make_policy(
            self.params.dcgn
        )
        self.name = f"dcgn.gpu{device.node_id}.{gpu_index}"
        self._mailboxes: List[SlotMailboxes] = []
        self._handles: List[KernelHandle] = []
        self._inflight: List[_Inflight] = []
        #: Per-slot collective sequence counters (persist across launches).
        self._coll_counters: Dict[int, int] = {}
        self._shutdown = False
        #: Fired when the comm thread completes one of our in-flight
        #: requests (paper §3.2.2: the comm thread "signals CPU- and
        #: GPU-controlling threads as communications complete").
        self._completion_sig = Signal(sim, name=f"{self.name}.comp")
        #: Fired on kernel launches and shutdown so a fully idle thread
        #: can block instead of burning poll ticks.
        self._activity_sig = Signal(sim, name=f"{self.name}.act")
        #: Polling-load accounting (ablation A1).
        self.polls = 0
        self.empty_polls = 0
        self.proc = sim.process(self._run(), name=self.name)

    # -- host-side API ------------------------------------------------------
    def launch(
        self,
        fn,
        config: Optional[LaunchConfig] = None,
        args: tuple = (),
        name: str = "",
    ) -> Generator[Event, Any, KernelHandle]:
        """Launch a communicating kernel on this GPU.

        Must be driven from a simulated host process (the runtime does
        this); charges the kernel-launch overhead.
        """
        cfg = config if config is not None else LaunchConfig(
            grid_blocks=self.slots
        )
        notify = None
        if self.params.dcgn.future_gpu_signaling:
            # Future hardware: the GPU raises an interrupt-like signal on
            # every mailbox post, waking the poller immediately.
            notify = self._activity_sig.fire
        mbox = SlotMailboxes(
            self.sim,
            n_slots=self.slots,
            spin_check_us=self.params.dcgn.gpu_spin_check_us,
            desc_bytes=self.params.dcgn.mailbox_desc_bytes,
            notify=notify,
        )
        self._mailboxes.append(mbox)

        def comm_factory(block_ctx: BlockContext) -> GpuCommApi:
            return GpuCommApi(
                block_ctx,
                mbox,
                self.rankmap,
                node_id=self.device.node_id,
                gpu_index=self.gpu_index,
                coll_counters=self._coll_counters,
                groups=self.comm.groups,
                windows=self.comm.windows,
            )

        yield self.sim.timeout(us(self.device.params.kernel_launch_us))
        handle = launch_kernel(
            self.device,
            fn,
            cfg,
            args=args,
            name=name or f"{self.name}.kernel",
            comm_factory=comm_factory,
        )
        self._handles.append(handle)
        self._activity_sig.fire()
        return handle

    def shutdown(self) -> None:
        """Exit the polling loop once all work has drained."""
        self._shutdown = True
        self._activity_sig.fire()

    @property
    def busy(self) -> bool:
        """True while kernels are running or requests are in flight."""
        return bool(self._inflight) or any(
            not h.finished for h in self._handles
        )

    def describe_state(self) -> str:
        """Diagnostics for the runtime watchdog."""
        parts = [h.describe_blocked() for h in self._handles if not h.finished]
        parts.append(f"{len(self._inflight)} in-flight requests")
        return f"{self.name}: " + "; ".join(parts)

    # -- polling loop ------------------------------------------------------
    def _run(self):
        # Threads start at a deterministic pseudo-random phase of the
        # polling period (real pollers are never synchronized); this is
        # what makes detection latency behave like U(0, interval) and the
        # multi-GPU barrier cost grow with the max over pollers.
        phase = float(
            self.device.rng.stream(f"{self.name}.phase").uniform(
                0.0, us(self.params.dcgn.gpu_poll_interval_us)
            )
        )
        if phase > 0:
            if self.policy.supports_kick:
                kick_ev = self.kick.wait()
                fired = yield AnyOf(
                    self.sim, [self.sim.timeout(phase), kick_ev]
                )
                if kick_ev in fired:
                    self.policy.kicked()
            else:
                yield self.sim.timeout(phase)
        future_signaling = self.params.dcgn.future_gpu_signaling
        while True:
            delay = us(self.policy.next_delay_us())
            waits = [self.sim.timeout(delay), self._completion_sig.wait()]
            comp_ev = waits[1]
            kick_ev = None
            if self.policy.supports_kick:
                kick_ev = self.kick.wait()
                waits.append(kick_ev)
            post_ev = None
            if future_signaling:
                # Future hardware: a mailbox post interrupts the sleep.
                post_ev = self._activity_sig.wait()
                waits.append(post_ev)
            fired = yield AnyOf(self.sim, waits)
            if kick_ev is not None and kick_ev in fired:
                self.policy.kicked()
            if post_ev is not None and post_ev in fired:
                yield self.sim.timeout(
                    us(self.params.cpu.thread_signal_us)
                )
                found = yield from self._poll_once()
                self.policy.observe(found)
                if self._shutdown and not self.busy:
                    break
                continue
            if comp_ev in fired:
                # Signalled completion: handle write-backs immediately
                # (thread wake-up cost), skip the mailbox probe.
                yield self.sim.timeout(
                    us(self.params.cpu.thread_signal_us)
                )
                yield from self._handle_completions()
                if self._shutdown and not self.busy:
                    break
                continue
            if self._shutdown and not self.busy:
                break
            if not self.busy:
                # Fully idle: block until a launch / kick / completion /
                # shutdown instead of burning empty poll ticks.
                self.policy.observe(False)
                idle_waits = [
                    self._activity_sig.wait(),
                    self._completion_sig.wait(),
                ]
                if self.policy.supports_kick:
                    idle_waits.append(self.kick.wait())
                yield AnyOf(self.sim, idle_waits)
                if self._shutdown and not self.busy:
                    break
                continue
            found = yield from self._poll_once()
            self.policy.observe(found)
        self._prune()

    def _handle_completions(self) -> Generator[Event, Any, bool]:
        """Write back results for completed in-flight requests."""
        found = False
        for entry in [e for e in self._inflight if e.creq.done.triggered]:
            self._inflight.remove(entry)
            yield from self._complete(entry)
            found = True
        self._prune()
        return found

    def _poll_once(self) -> Generator[Event, Any, bool]:
        """One full poll: probe, harvest, relay, complete."""
        self.polls += 1
        found = False
        # 1. Probe the mailbox status region.
        yield from self.device.pcie.probe()
        self.sim.trace("gpu_thread.poll", thread=self.name)
        pending = any(m.has_pending() for m in self._mailboxes)
        if pending:
            # 2. Read all descriptor regions in one transaction.
            region = sum(m.region_bytes() for m in self._mailboxes)
            yield from self.device.pcie.read(region)
            self.sim.trace("gpu_thread.harvest", thread=self.name)
            for mbox in list(self._mailboxes):
                for mreq in mbox.harvest():
                    yield from self._ingest(mbox, mreq)
                    found = True
        # 3. Handle any completions that raced with this poll.
        done_now = yield from self._handle_completions()
        found = found or done_now
        if not found:
            self.empty_polls += 1
        return found

    def _vrank(self, slot: int) -> int:
        return self.rankmap.slot_rank(
            self.device.node_id, self.gpu_index, slot
        )

    def _check_window_dtype(self, args: dict, dbuf) -> None:
        """Device-buffer dtype must match the window's — a mismatch
        would silently truncate/cast through the byte-count math."""
        if self.comm.windows is None:
            raise DcgnError("this job declares no windows")
        window = self.comm.windows.by_name(str(args["win"]))
        if dbuf is None or dbuf.data.dtype != window.dtype:
            got = "no buffer" if dbuf is None else str(dbuf.data.dtype)
            raise DcgnError(
                f"window {window.name!r} expects dtype {window.dtype}, "
                f"kernel posted {got}"
            )

    @staticmethod
    def _coll_extra(args: dict, **extra) -> dict:
        """Collective request extras (slot-group id passes through)."""
        out = {"coll_seq": int(args["coll_seq"]), **extra}
        if "gid" in args:
            out["gid"] = int(args["gid"])
        return out

    def _ingest(
        self, mbox: SlotMailboxes, mreq: MailboxRequest
    ) -> Generator[Event, Any, None]:
        """Translate a mailbox request into a comm-thread request."""
        vrank = self._vrank(mreq.slot)
        op = mreq.op
        args = mreq.args
        dbuf: Optional[DeviceBuffer] = args.get("buf")
        nbytes = int(args.get("nbytes", 0))
        needs_payload_read = op == "send" or (
            op == "bcast" and args.get("root") == vrank
        ) or op in ("allreduce", "gather", "rma_put", "rma_acc")
        data: Optional[np.ndarray] = None
        if needs_payload_read:
            if dbuf is None:
                raise DcgnError(f"{op} request without device buffer")
            if not self.params.dcgn.future_gpu_direct:
                yield from self.device.pcie.read(nbytes)
            # else: future hardware — the GPU pushes payload bytes
            # straight toward the NIC; no host-bounce PCIe charge.
            # Typed snapshot so reductions see real dtypes.
            flat = dbuf.data.reshape(-1)
            count = nbytes // dbuf.data.itemsize
            data = flat[:count].copy()
        elif op == "scatter" and args.get("root") == vrank:
            # Scatter root: the *full* send buffer travels to the host.
            sbuf: Optional[DeviceBuffer] = args.get("sbuf")
            if sbuf is None:
                raise DcgnError("scatter root request without send buffer")
            if not self.params.dcgn.future_gpu_direct:
                yield from self.device.pcie.read(sbuf.nbytes)
            data = sbuf.data.reshape(-1).copy()
        done = self.sim.event(name=f"{self.name}.creq")
        if op == "send":
            creq = CommRequest(
                op="send",
                src_vrank=vrank,
                peer=int(args["dest"]),
                nbytes=nbytes,
                data=data,
                done=done,
            )
            writeback = None
        elif op == "recv":
            creq = CommRequest(
                op="recv",
                src_vrank=vrank,
                peer=int(args["source"]),
                nbytes=nbytes,
                done=done,
            )
            writeback = dbuf
        elif op == "barrier":
            creq = CommRequest(
                op="barrier",
                src_vrank=vrank,
                done=done,
                extra=self._coll_extra(args),
            )
            writeback = None
        elif op == "bcast":
            root = int(args["root"])
            creq = CommRequest(
                op="bcast",
                src_vrank=vrank,
                root=root,
                nbytes=nbytes,
                data=data,
                done=done,
                extra=self._coll_extra(args),
            )
            writeback = dbuf if root != vrank else None
        elif op == "allreduce":
            creq = CommRequest(
                op="allreduce",
                src_vrank=vrank,
                nbytes=nbytes,
                data=data,
                done=done,
                extra=self._coll_extra(
                    args, reduce_op=args.get("reduce_op", "sum")
                ),
            )
            writeback = dbuf
        elif op == "gather":
            root = int(args["root"])
            creq = CommRequest(
                op="gather",
                src_vrank=vrank,
                root=root,
                nbytes=nbytes,
                data=data,
                done=done,
                extra=self._coll_extra(args, chunk=nbytes),
            )
            writeback = args.get("rbuf") if root == vrank else None
        elif op == "scatter":
            root = int(args["root"])
            creq = CommRequest(
                op="scatter",
                src_vrank=vrank,
                root=root,
                nbytes=nbytes,
                data=data,
                done=done,
                extra=self._coll_extra(args, chunk=nbytes),
            )
            writeback = dbuf
        elif op == "rma_put":
            self._check_window_dtype(args, dbuf)
            creq = CommRequest(
                op="rma_put",
                src_vrank=vrank,
                peer=int(args["dest"]),
                nbytes=nbytes,
                data=data,
                done=done,
                extra={
                    "win": str(args["win"]),
                    "offset": int(args.get("offset", 0)),
                },
            )
            writeback = None
        elif op == "rma_acc":
            self._check_window_dtype(args, dbuf)
            creq = CommRequest(
                op="rma_accumulate",
                src_vrank=vrank,
                peer=int(args["dest"]),
                nbytes=nbytes,
                data=data,
                done=done,
                extra={
                    "win": str(args["win"]),
                    "offset": int(args.get("offset", 0)),
                    "reduce_op": str(args.get("reduce_op", "sum")),
                },
            )
            writeback = None
        elif op == "rma_get":
            self._check_window_dtype(args, dbuf)
            creq = CommRequest(
                op="rma_get",
                src_vrank=vrank,
                peer=int(args["source"]),
                nbytes=nbytes,
                done=done,
                extra={
                    "win": str(args["win"]),
                    "offset": int(args.get("offset", 0)),
                },
            )
            writeback = dbuf
        elif op == "split":
            creq = CommRequest(
                op="split",
                src_vrank=vrank,
                done=done,
                extra={
                    "coll_seq": int(args["coll_seq"]),
                    "color": int(args.get("color", -1)),
                    "key": int(args.get("key", 0)),
                },
            )
            writeback = None
        else:
            raise DcgnError(f"unknown GPU mailbox op {op!r}")
        creq.stamp("posted", mreq.posted_at)
        creq.stamp("harvested", self.sim.now)
        self._inflight.append(_Inflight(mbox, mreq, creq, writeback))
        done.add_callback(lambda _e: self._completion_sig.fire())
        yield from self.comm.enqueue_from_gpu_thread(creq)
        creq.stamp("enqueued", self.sim.now)
        self.sim.trace(
            "gpu_thread.relay", thread=self.name, op=op, vrank=vrank
        )

    def _complete(self, entry: _Inflight) -> Generator[Event, Any, None]:
        """Write results back to the device and release the kernel."""
        creq = entry.creq
        if entry.dbuf is not None and creq.data is not None:
            # Payload write (recv / bcast non-root / allreduce result /
            # gather root / scatter piece).
            n = min(creq.status.nbytes if creq.status else creq.nbytes,
                    creq.nbytes)
            if creq.op == "gather":
                # The root's result is the whole group's contribution
                # set, not one chunk.
                n = int(creq.data.view(np.uint8).reshape(-1).size)
            if not self.params.dcgn.future_gpu_direct:
                yield from self.device.pcie.write(n)
            # else: future hardware — incoming payloads land in device
            # memory directly from the NIC.
            dview = entry.dbuf.bytes_view()
            sview = creq.data.view(np.uint8).reshape(-1)
            m = min(dview.size, sview.size, n if n > 0 else sview.size)
            dview[:m] = sview[:m]
        # Completion flag write.
        yield from self.device.pcie.write(_FLAG_BYTES)
        creq.stamp("written_back", self.sim.now)
        self.sim.trace(
            "gpu_thread.writeback", thread=self.name, op=creq.op
        )
        # Splits resolve to the group descriptor (None = opted out)
        # rather than a wire status.
        result = (
            creq.extra.get("group") if creq.op == "split" else creq.status
        )
        entry.mbox.complete(entry.mreq, result=result)

    def _prune(self) -> None:
        self._handles = [h for h in self._handles if not h.finished]
        if not self._handles:
            # Keep mailboxes of running kernels only; finished launches
            # can't post anymore.
            self._mailboxes = [m for m in self._mailboxes if m.has_pending()]
