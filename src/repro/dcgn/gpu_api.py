"""The DCGN API available inside GPU kernels (paper Figure 1).

A GPU kernel block receives this object as ``ctx.comm``.  All calls are
*slot-indexed*: the kernel explicitly names which of the GPU's virtual
ranks sources the communication ("Kernels pass this slot-identifier to
enforce explicit mappings of GPU-sourced communication requests to
slots", §3.2).

Buffers must live in GPU global memory (:class:`DeviceBuffer`); passing
host memory raises :class:`CommViolation` — mirroring the paper's note
that "for communication, we have to use global memory".

Mechanically, each call writes a request descriptor into the slot's
mailbox and spins on the completion flag; the host-side GPU-kernel
thread does the rest.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, Optional

import numpy as np

from ..gpusim.kernel import BlockContext
from ..gpusim.mailbox import MailboxRequest, SlotMailboxes
from ..gpusim.memory import DeviceBuffer
from ..sim.core import Event
from .errors import CommViolation
from .groups import DcgnGroup, GroupTable
from .ranks import ANY, RankMap
from .requests import CommStatus
from .windows import DcgnWindowTable

__all__ = ["GpuCommApi", "GpuGroupComm", "GpuRequestHandle"]


class GpuRequestHandle:
    """Handle for a nonblocking slot request posted from a GPU kernel.

    The kernel keeps computing while the GPU-kernel thread harvests the
    mailbox descriptor and the comm thread progresses the operation —
    the compute/communication overlap the paper's dedicated comm thread
    exists to provide.  ``wait`` spins on the completion flag (one
    device spin-check granularity after the host's PCIe write);
    ``test`` is a cheap flag read.
    """

    def __init__(self, mbox: SlotMailboxes, req: MailboxRequest) -> None:
        self._mbox = mbox
        self.req = req

    def test(self) -> bool:
        """True once the host flipped the completion flag."""
        return self.req.done.triggered

    def wait(self) -> Generator[Event, Any, Any]:
        """``yield from`` until complete; returns the CommStatus."""
        result = yield from self._mbox.wait(self.req)
        return result


class GpuCommApi:
    """Slot-based communication interface bound to one kernel block."""

    def __init__(
        self,
        block_ctx: BlockContext,
        mailboxes: SlotMailboxes,
        rankmap: RankMap,
        node_id: int,
        gpu_index: int,
        coll_counters: Dict,
        groups: Optional[GroupTable] = None,
        windows: Optional[DcgnWindowTable] = None,
    ) -> None:
        self._ctx = block_ctx
        self._mbox = mailboxes
        self._rankmap = rankmap
        self._node_id = node_id
        self._gpu_index = gpu_index
        #: Per-slot (and per slot-group) collective counters, shared
        #: across blocks and launches (owned by the GPU-kernel thread).
        self._coll_counters = coll_counters
        #: Slot-group registry (the job's shared GroupTable).
        self._groups = groups
        #: One-sided window registry (kernel-side validation).
        self._windows = windows

    # -- identity --------------------------------------------------------
    @property
    def n_slots(self) -> int:
        return self._mbox.n_slots

    @property
    def size(self) -> int:
        """Total virtual ranks in the job."""
        return self._rankmap.size

    def rank(self, slot: int) -> int:
        """dcgn::gpu::getRank(slot) — the slot's virtual rank."""
        return self._rankmap.slot_rank(self._node_id, self._gpu_index, slot)

    # -- helpers ------------------------------------------------------------
    def _check_buf(self, buf: DeviceBuffer, what: str) -> np.ndarray:
        if not isinstance(buf, DeviceBuffer):
            raise CommViolation(
                f"gpu::{what} requires GPU global memory, got "
                f"{type(buf).__name__} (paper §3.2: communication must "
                f"use global memory)"
            )
        dev = self._ctx.device
        if not dev.owns(buf):
            raise CommViolation(
                f"gpu::{what}: buffer {buf.name!r} lives on another device"
            )
        buf.check_usable()
        return buf.data

    def _check_peer(self, peer: int) -> None:
        if peer != ANY:
            self._rankmap.info(peer)

    def _next_coll(self, slot: int) -> int:
        seq = self._coll_counters.get(slot, 0)
        self._coll_counters[slot] = seq + 1
        return seq

    def _next_group_coll(self, slot: int, gid: int) -> int:
        key = (gid, slot)
        seq = self._coll_counters.get(key, 0)
        self._coll_counters[key] = seq + 1
        return seq

    # -- point-to-point ------------------------------------------------------
    def send(
        self,
        slot: int,
        dest: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::send(slot, dest, buf, size)."""
        self._check_buf(buf, "send")
        self._check_peer(dest)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._mbox.post(
            slot, "send", dest=dest, buf=buf, nbytes=n
        )
        yield from self._mbox.wait(req)

    def recv(
        self,
        slot: int,
        source: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, CommStatus]:
        """dcgn::gpu::recv(slot, source, buf, size, &stat)."""
        self._check_buf(buf, "recv")
        self._check_peer(source)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._mbox.post(
            slot, "recv", source=source, buf=buf, nbytes=n
        )
        status = yield from self._mbox.wait(req)
        return status

    def sendrecv(
        self,
        slot: int,
        dest: int,
        sendbuf: DeviceBuffer,
        source: int,
        recvbuf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, CommStatus]:
        """Fused send+recv: both descriptors posted before waiting.

        The paper (§5.1, matrix multiplication) credits this fusion for
        Cannon's DCGN performance: one mailbox polling round services
        both requests instead of two.
        """
        self._check_buf(sendbuf, "sendrecv")
        self._check_buf(recvbuf, "sendrecv")
        self._check_peer(dest)
        self._check_peer(source)
        sn = int(nbytes) if nbytes is not None else sendbuf.nbytes
        rn = int(nbytes) if nbytes is not None else recvbuf.nbytes
        sreq = yield from self._mbox.post(
            slot, "send", dest=dest, buf=sendbuf, nbytes=sn
        )
        rreq = yield from self._mbox.post(
            slot, "recv", source=source, buf=recvbuf, nbytes=rn
        )
        yield from self._mbox.wait(sreq)
        status = yield from self._mbox.wait(rreq)
        return status

    def sendrecv_replace(
        self,
        slot: int,
        dest: int,
        source: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, CommStatus]:
        """In-place fused exchange (the MPI_Sendrecv_replace analogue).

        Safe because the GPU-kernel thread snapshots the outgoing payload
        (PCIe read) before any incoming payload is written back.
        """
        status = yield from self.sendrecv(
            slot, dest, buf, source, buf, nbytes=nbytes
        )
        return status

    # -- nonblocking point-to-point (paper: dcgn::gpu::iSendTo/iRecvFrom) --
    def isend(
        self,
        slot: int,
        dest: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking slot send: post the descriptor and keep computing.

        The GPU-kernel thread snapshots the payload at harvest time
        (the PCIe read), so the kernel must not overwrite ``buf`` until
        ``wait`` returns.
        """
        self._check_buf(buf, "isend")
        self._check_peer(dest)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._mbox.post(
            slot, "send", dest=dest, buf=buf, nbytes=n
        )
        return GpuRequestHandle(self._mbox, req)

    def irecv(
        self,
        slot: int,
        source: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking slot receive into ``buf`` (read after ``wait``)."""
        self._check_buf(buf, "irecv")
        self._check_peer(source)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._mbox.post(
            slot, "recv", source=source, buf=buf, nbytes=n
        )
        return GpuRequestHandle(self._mbox, req)

    #: Paper-style aliases (dcgn::gpu::iSendTo / iRecvFrom).
    iSendTo = isend
    iRecvFrom = irecv

    # -- one-sided windows (GPU-sourced, matching-free) --------------------
    def _check_window(
        self,
        win: str,
        target: int,
        buf: DeviceBuffer,
        nbytes: Optional[int],
        offset: int,
        what: str,
    ) -> int:
        """Kernel-side validation of a one-sided access: the window
        exists, dtypes match, the byte count fits the device buffer
        and divides into whole elements, and the target range is in
        bounds — so mistakes surface inside the kernel instead of
        killing a service thread (or silently truncating)."""
        self._check_buf(buf, what)
        if target == ANY or not (0 <= target < self._rankmap.size):
            raise CommViolation(
                f"gpu::{what} needs a concrete target virtual rank, got "
                f"{target} (one-sided ops have no wildcard matching)"
            )
        if self._windows is None:
            raise CommViolation("this job declares no windows")
        window = self._windows.by_name(str(win))
        window.locate(target)  # raises if the vrank has no region
        if buf.data.dtype != window.dtype:
            raise CommViolation(
                f"gpu::{what}: buffer dtype {buf.data.dtype} does not "
                f"match window {window.name!r} dtype {window.dtype}"
            )
        n = int(nbytes) if nbytes is not None else buf.nbytes
        if n > buf.nbytes:
            raise CommViolation(
                f"gpu::{what}: nbytes {n} exceeds device buffer "
                f"{buf.name!r} of {buf.nbytes} B"
            )
        if n % window.dtype.itemsize != 0:
            raise CommViolation(
                f"gpu::{what}: nbytes {n} is not a whole number of "
                f"{window.dtype} elements"
            )
        window.check_range(target, int(offset), n // window.dtype.itemsize)
        return n

    def put(
        self,
        slot: int,
        win: str,
        dest: int,
        buf: DeviceBuffer,
        offset: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::put — push ``buf`` straight into virtual rank
        ``dest``'s region of window ``win`` (element ``offset``).

        The paper's GPU-as-source idea taken to its limit: no matching
        receive exists anywhere — not on the target GPU, not even in
        the target node's comm thread.  The host thread harvests the
        descriptor, reads the payload over PCIe, and the local comm
        thread RDMA-writes it into the remote window.  Completion is
        *remote*: when the call returns, a neighbor kernel reading its
        own window (after its own synchronization) sees the halo."""
        n = self._check_window(win, dest, buf, nbytes, offset, "put")
        req = yield from self._mbox.post(
            slot, "rma_put", win=str(win), dest=dest, buf=buf, nbytes=n,
            offset=int(offset),
        )
        yield from self._mbox.wait(req)

    def iput(
        self,
        slot: int,
        win: str,
        dest: int,
        buf: DeviceBuffer,
        offset: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking slot put: post the descriptor and keep computing
        (``wait`` guarantees remote completion)."""
        n = self._check_window(win, dest, buf, nbytes, offset, "iput")
        req = yield from self._mbox.post(
            slot, "rma_put", win=str(win), dest=dest, buf=buf, nbytes=n,
            offset=int(offset),
        )
        return GpuRequestHandle(self._mbox, req)

    def get(
        self,
        slot: int,
        win: str,
        source: int,
        buf: DeviceBuffer,
        offset: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, CommStatus]:
        """dcgn::gpu::get — one-sided read of ``source``'s window
        region into ``buf``; the source rank never participates."""
        n = self._check_window(win, source, buf, nbytes, offset, "get")
        req = yield from self._mbox.post(
            slot, "rma_get", win=str(win), source=source, buf=buf,
            nbytes=n, offset=int(offset),
        )
        status = yield from self._mbox.wait(req)
        return status

    def accumulate(
        self,
        slot: int,
        win: str,
        dest: int,
        buf: DeviceBuffer,
        op: str = "sum",
        offset: int = 0,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::accumulate — one-sided read-modify-write into
        ``dest``'s window region; ``"replace"`` is an ordered
        overwrite.  Same-pair accumulates apply in program order."""
        from .cpu_api import _check_reduce_op_name

        n = self._check_window(
            win, dest, buf, nbytes, offset, "accumulate"
        )
        req = yield from self._mbox.post(
            slot, "rma_acc", win=str(win), dest=dest, buf=buf, nbytes=n,
            offset=int(offset), reduce_op=_check_reduce_op_name(op),
        )
        yield from self._mbox.wait(req)

    #: Paper-style aliases.
    iPutTo = iput

    # -- collectives -------------------------------------------------------
    def barrier(self, slot: int) -> Generator[Event, Any, None]:
        """dcgn::gpu::barrier(slot) — job-wide barrier."""
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(slot, "barrier", coll_seq=seq)
        yield from self._mbox.wait(req)

    def broadcast(
        self,
        slot: int,
        root: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::broadcast(slot, root, buf, size)."""
        self._check_buf(buf, "broadcast")
        self._check_peer(root)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "bcast", root=root, buf=buf, nbytes=n, coll_seq=seq
        )
        yield from self._mbox.wait(req)

    def allreduce(
        self,
        slot: int,
        buf: DeviceBuffer,
        op: str = "sum",
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::allReduce(slot, buf, op) — in-place result."""
        self._check_buf(buf, "allreduce")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "allreduce", buf=buf, nbytes=n, coll_seq=seq, reduce_op=op
        )
        yield from self._mbox.wait(req)

    # -- nonblocking collectives -------------------------------------------
    def ibroadcast(
        self,
        slot: int,
        root: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking broadcast: post and keep computing.

        Collective sequence numbers are claimed at post time, so every
        slot must issue its (nonblocking or blocking) collectives in
        the same order — the usual MPI rule.
        """
        self._check_buf(buf, "ibroadcast")
        self._check_peer(root)
        n = int(nbytes) if nbytes is not None else buf.nbytes
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "bcast", root=root, buf=buf, nbytes=n, coll_seq=seq
        )
        return GpuRequestHandle(self._mbox, req)

    def iallreduce(
        self,
        slot: int,
        buf: DeviceBuffer,
        op: str = "sum",
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking in-place allreduce on the slot's buffer."""
        self._check_buf(buf, "iallreduce")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "allreduce", buf=buf, nbytes=n, coll_seq=seq, reduce_op=op
        )
        return GpuRequestHandle(self._mbox, req)

    def ibarrier(self, slot: int) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking job-wide barrier."""
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(slot, "barrier", coll_seq=seq)
        return GpuRequestHandle(self._mbox, req)

    #: Paper-style alias (dcgn::gpu::iAllReduce).
    iAllreduce = iallreduce
    iBroadcast = ibroadcast

    # -- gather / scatter ---------------------------------------------------
    def gather(
        self,
        slot: int,
        root: int,
        sendbuf: DeviceBuffer,
        recvbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::gather — equal chunks to virtual rank ``root``
        (which supplies ``recvbuf``)."""
        req = yield from self._post_gather(slot, root, sendbuf, recvbuf)
        yield from self._mbox.wait(req)

    def igather(
        self,
        slot: int,
        root: int,
        sendbuf: DeviceBuffer,
        recvbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking gather: post and keep computing (the comm thread
        progresses the collective asynchronously)."""
        req = yield from self._post_gather(slot, root, sendbuf, recvbuf)
        return GpuRequestHandle(self._mbox, req)

    def _post_gather(self, slot, root, sendbuf, recvbuf, extra=None):
        self._check_buf(sendbuf, "gather")
        self._check_peer(root)
        if recvbuf is not None:
            self._check_buf(recvbuf, "gather")
        elif self.rank(slot) == root:
            raise CommViolation("gather root needs a recv buffer")
        args = dict(extra or {})
        if "coll_seq" not in args:
            args["coll_seq"] = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "gather", root=root, buf=sendbuf, rbuf=recvbuf,
            nbytes=sendbuf.nbytes, **args,
        )
        return req

    def scatter(
        self,
        slot: int,
        root: int,
        recvbuf: DeviceBuffer,
        sendbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, None]:
        """dcgn::gpu::scatter — equal chunks from virtual rank ``root``
        (which supplies ``sendbuf``)."""
        req = yield from self._post_scatter(slot, root, recvbuf, sendbuf)
        yield from self._mbox.wait(req)

    def iscatter(
        self,
        slot: int,
        root: int,
        recvbuf: DeviceBuffer,
        sendbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, "GpuRequestHandle"]:
        """Nonblocking scatter: post and keep computing."""
        req = yield from self._post_scatter(slot, root, recvbuf, sendbuf)
        return GpuRequestHandle(self._mbox, req)

    def _post_scatter(self, slot, root, recvbuf, sendbuf, extra=None):
        self._check_buf(recvbuf, "scatter")
        self._check_peer(root)
        if sendbuf is not None:
            self._check_buf(sendbuf, "scatter")
        elif self.rank(slot) == root:
            raise CommViolation("scatter root needs a send buffer")
        args = dict(extra or {})
        if "coll_seq" not in args:
            args["coll_seq"] = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "scatter", root=root, buf=recvbuf, sbuf=sendbuf,
            nbytes=recvbuf.nbytes, **args,
        )
        return req

    # -- slot groups --------------------------------------------------------
    def split(
        self, slot: int, color: int, key: int = 0
    ) -> Generator[Event, Any, Optional["GpuGroupComm"]]:
        """Collective ``comm_split`` over every virtual rank in the job.

        Every slot (and every CPU rank) must call it in the same
        collective order; slots sharing a ``color`` get a
        :class:`GpuGroupComm` over the new group, ordered by
        (key, vrank).  A negative color opts out and returns ``None``.
        """
        seq = self._next_coll(slot)
        req = yield from self._mbox.post(
            slot, "split", color=int(color), key=int(key), coll_seq=seq
        )
        group = yield from self._mbox.wait(req)
        if group is None:
            return None
        return GpuGroupComm(self, group)

    def group(self, name: str) -> "GpuGroupComm":
        """Handle for a slot group declared in ``DcgnConfig``."""
        if self._groups is None:
            raise CommViolation("this job has no slot-group registry")
        return GpuGroupComm(self, self._groups.by_name(name))


class GpuGroupComm:
    """Slot-group communication scope inside a GPU kernel.

    Returned by :meth:`GpuCommApi.split` / :meth:`GpuCommApi.group`.
    Collectives here are scoped to the group — staged against the
    group's membership and progressed on the group's own node-level MPI
    sub-communicator, independently of world collectives, so disjoint
    groups' collectives overlap on the wire.  ``root`` arguments are
    **group-local ranks**; each group orders its own collectives.
    """

    def __init__(self, api: GpuCommApi, group: DcgnGroup) -> None:
        self._api = api
        self.group = group

    # -- identity -----------------------------------------------------------
    @property
    def size(self) -> int:
        return self.group.size

    def rank(self, slot: int) -> int:
        """The slot's rank within the group."""
        return self.group.rank_of(self._api.rank(slot))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<GpuGroupComm {self.group.name!r} size={self.size}>"

    # -- plumbing -----------------------------------------------------------
    def _check_member(self, slot: int) -> int:
        vrank = self._api.rank(slot)
        if vrank not in self.group:
            raise CommViolation(
                f"slot {slot} (vrank {vrank}) is not a member of group "
                f"{self.group.name!r}"
            )
        return vrank

    def _extra(self, slot: int) -> Dict:
        return {
            "coll_seq": self._api._next_group_coll(slot, self.group.gid),
            "gid": self.group.gid,
        }

    def _root_vrank(self, root: int) -> int:
        if not (0 <= root < self.group.size):
            raise CommViolation(
                f"group root {root} out of range [0,{self.group.size})"
            )
        return self.group.vranks[root]

    # -- collectives --------------------------------------------------------
    def barrier(self, slot: int) -> Generator[Event, Any, None]:
        """Barrier across the group."""
        self._check_member(slot)
        req = yield from self._api._mbox.post(
            slot, "barrier", **self._extra(slot)
        )
        yield from self._api._mbox.wait(req)

    def ibarrier(self, slot: int) -> Generator[Event, Any, GpuRequestHandle]:
        """Nonblocking group barrier."""
        self._check_member(slot)
        req = yield from self._api._mbox.post(
            slot, "barrier", **self._extra(slot)
        )
        return GpuRequestHandle(self._api._mbox, req)

    def broadcast(
        self,
        slot: int,
        root: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """Broadcast from *group rank* ``root`` across the group."""
        self._check_member(slot)
        self._api._check_buf(buf, "broadcast")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._api._mbox.post(
            slot, "bcast", root=self._root_vrank(root), buf=buf,
            nbytes=n, **self._extra(slot),
        )
        yield from self._api._mbox.wait(req)

    def ibroadcast(
        self,
        slot: int,
        root: int,
        buf: DeviceBuffer,
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, GpuRequestHandle]:
        """Nonblocking group broadcast."""
        self._check_member(slot)
        self._api._check_buf(buf, "ibroadcast")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._api._mbox.post(
            slot, "bcast", root=self._root_vrank(root), buf=buf,
            nbytes=n, **self._extra(slot),
        )
        return GpuRequestHandle(self._api._mbox, req)

    def allreduce(
        self,
        slot: int,
        buf: DeviceBuffer,
        op: str = "sum",
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, None]:
        """In-place allreduce across the group."""
        self._check_member(slot)
        self._api._check_buf(buf, "allreduce")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._api._mbox.post(
            slot, "allreduce", buf=buf, nbytes=n, reduce_op=op,
            **self._extra(slot),
        )
        yield from self._api._mbox.wait(req)

    def iallreduce(
        self,
        slot: int,
        buf: DeviceBuffer,
        op: str = "sum",
        nbytes: Optional[int] = None,
    ) -> Generator[Event, Any, GpuRequestHandle]:
        """Nonblocking in-place group allreduce."""
        self._check_member(slot)
        self._api._check_buf(buf, "iallreduce")
        n = int(nbytes) if nbytes is not None else buf.nbytes
        req = yield from self._api._mbox.post(
            slot, "allreduce", buf=buf, nbytes=n, reduce_op=op,
            **self._extra(slot),
        )
        return GpuRequestHandle(self._api._mbox, req)

    def gather(
        self,
        slot: int,
        root: int,
        sendbuf: DeviceBuffer,
        recvbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, None]:
        """Gather equal chunks to *group rank* ``root`` (group order)."""
        self._check_member(slot)
        req = yield from self._api._post_gather(
            slot, self._root_vrank(root), sendbuf, recvbuf,
            extra=self._extra(slot),
        )
        yield from self._api._mbox.wait(req)

    def igather(
        self,
        slot: int,
        root: int,
        sendbuf: DeviceBuffer,
        recvbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, GpuRequestHandle]:
        """Nonblocking group gather."""
        self._check_member(slot)
        req = yield from self._api._post_gather(
            slot, self._root_vrank(root), sendbuf, recvbuf,
            extra=self._extra(slot),
        )
        return GpuRequestHandle(self._api._mbox, req)

    def scatter(
        self,
        slot: int,
        root: int,
        recvbuf: DeviceBuffer,
        sendbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, None]:
        """Scatter equal chunks from *group rank* ``root``."""
        self._check_member(slot)
        req = yield from self._api._post_scatter(
            slot, self._root_vrank(root), recvbuf, sendbuf,
            extra=self._extra(slot),
        )
        yield from self._api._mbox.wait(req)

    def iscatter(
        self,
        slot: int,
        root: int,
        recvbuf: DeviceBuffer,
        sendbuf: Optional[DeviceBuffer] = None,
    ) -> Generator[Event, Any, GpuRequestHandle]:
        """Nonblocking group scatter."""
        self._check_member(slot)
        req = yield from self._api._post_scatter(
            slot, self._root_vrank(root), recvbuf, sendbuf,
            extra=self._extra(slot),
        )
        return GpuRequestHandle(self._api._mbox, req)
