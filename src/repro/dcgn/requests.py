"""Communication-request descriptors flowing through DCGN's queues."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

import numpy as np

from ..sim.core import Event

__all__ = ["CommRequest", "CommStatus", "P2P_OPS", "COLLECTIVE_OPS", "RMA_OPS"]

P2P_OPS = frozenset({"send", "recv"})
COLLECTIVE_OPS = frozenset(
    {"barrier", "bcast", "scatter", "gather", "allreduce", "reduce",
     "split"}
)
#: One-sided window operations: handled entirely by the *origin* comm
#: thread (no staging, no matching, no target-side request).
RMA_OPS = frozenset({"rma_put", "rma_get", "rma_accumulate"})

_req_ids = itertools.count()


@dataclass(frozen=True)
class CommStatus:
    """Completion record handed back to kernels (dcgn::CommStatus)."""

    source: int
    nbytes: int


@dataclass
class CommRequest:
    """One communication request from a kernel to the comm thread.

    ``data`` carries a snapshot of the payload for sends (taken at request
    creation for CPU kernels, at mailbox harvest — after the PCIe read —
    for GPU kernels).  For receives, ``deliver`` is invoked by the
    machinery that lands the payload in the requester's buffer.
    """

    op: str
    src_vrank: int
    #: Destination (sends) or source (recvs; ANY = -1).  Root for rooted
    #: collectives.
    peer: int = -1
    nbytes: int = 0
    data: Optional[np.ndarray] = None
    #: Callable(data: ndarray) that writes into the requester's buffer.
    #: For CPU ranks this copies into host memory; for GPU slots the GPU
    #: thread performs the PCIe write instead and this stays None.
    deliver: Optional[Callable[[np.ndarray], None]] = None
    #: Completion event fired by the comm thread (or GPU thread).
    done: Optional[Event] = None
    #: Status/result for the requester (set at completion).
    status: Optional[CommStatus] = None
    #: Collective op this request participates in (kind consistency check).
    root: int = -1
    #: Free-form extras (e.g. reduce op name).
    extra: Dict[str, Any] = field(default_factory=dict)
    req_id: int = field(default_factory=lambda: next(_req_ids))
    #: Simulated time the request entered the work queue.
    enqueued_at: float = 0.0
    #: Lifecycle timestamps for the overhead-breakdown report
    #: (issued / enqueued / picked / completed / returned, plus the
    #: GPU-side posted / harvested / written stages).
    marks: Dict[str, float] = field(default_factory=dict)

    def stamp(self, stage: str, t: float) -> None:
        """Record a lifecycle timestamp (first write wins)."""
        self.marks.setdefault(stage, t)

    def complete(self, status: Optional[CommStatus] = None) -> None:
        """Mark the request done (idempotence is an error by design)."""
        self.status = status
        if self.done is not None:
            self.stamp("completed", self.done.sim.now)
            self.done.succeed(status)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CommRequest #{self.req_id} {self.op} src={self.src_vrank} "
            f"peer={self.peer} n={self.nbytes}>"
        )
